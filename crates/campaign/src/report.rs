//! Machine-readable campaign reports: one versioned data model.
//!
//! Everything a campaign produces — the per-run rows, the JSON/CSV
//! renderings, the golden baselines, the run-cache entries and the serve
//! protocol's streaming results — serializes through the [`v1`] model: a
//! schema-tagged envelope (`"schema": "ipr-report/1"`) around
//! [`v1::RunRecord`] rows whose field semantics are declared once in
//! [`v1::FIELDS`].  The declaration carries each field's *class*
//! (discrete / metric / informational), which is what the tolerance diff
//! ([`crate::diff`]) and the golden gates consult instead of ad-hoc name
//! lists: a new field cannot silently become ungated (or gated) by its
//! spelling alone.
//!
//! [`CampaignReport`] is the historical name of the classic grid's
//! envelope and remains the constructor-friendly alias of [`v1::Report`].

pub use v1::Report as CampaignReport;

/// Version 1 of the report model (`ipr-report/1`).
///
/// The schema version participates in the run-cache fingerprint
/// ([`crate::cache::fingerprint`]), so bumping it invalidates every cached
/// run — a report produced under one schema can never be replayed as
/// another.
pub mod v1 {
    use crate::json::Json;
    use crate::spec::{mode_label, RunSpec};
    use intra_replication::RunReport;

    /// The version tag carried by every report envelope.
    pub const SCHEMA: &str = "ipr-report/1";

    /// Semantic class of a report field, declared per field in [`FIELDS`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FieldClass {
        /// Deterministic and discrete (ids, labels, seeds, counts):
        /// compared exactly by the diff, at any tolerance.
        Discrete,
        /// Deterministic and continuous (virtual times, residuals):
        /// compared under the diff's relative tolerance.
        Metric,
        /// Host-side measurement (wall clocks, scheduler dispatch counts):
        /// non-deterministic by nature, ignored by the diff entirely.
        Informational,
    }

    /// Declaration of one report field: its stable name and class.
    #[derive(Debug, Clone, Copy)]
    pub struct FieldSpec {
        /// Stable field name, as it appears in JSON and CSV.
        pub name: &'static str,
        /// Semantic class (see [`FieldClass`]).
        pub class: FieldClass,
    }

    const fn field(name: &'static str, class: FieldClass) -> FieldSpec {
        FieldSpec { name, class }
    }

    /// The declared fields of the v1 model: every run-level field of the
    /// classic campaign rows and of the weak-scaling rows, with its class.
    /// Envelope fields (`schema`, `campaign`, `scale`, `sweep`, `runs`) are
    /// structural and compared exactly.
    pub const FIELDS: &[FieldSpec] = &[
        // -- shared identity / axis fields ------------------------------
        field("id", FieldClass::Discrete),
        field("app", FieldClass::Discrete),
        field("scale", FieldClass::Discrete),
        field("mode", FieldClass::Discrete),
        field("scheduler", FieldClass::Discrete),
        field("failure", FieldClass::Discrete),
        field("seed", FieldClass::Discrete),
        // -- shared outcome counts --------------------------------------
        field("procs", FieldClass::Discrete),
        field("completed", FieldClass::Discrete),
        field("crashed", FieldClass::Discrete),
        field("errored", FieldClass::Discrete),
        field("failure_events", FieldClass::Discrete),
        field("scheduled_crashes", FieldClass::Discrete),
        // -- classic grid rows ------------------------------------------
        field("makespan_s", FieldClass::Metric),
        field("section_s", FieldClass::Metric),
        field("update_drain_s", FieldClass::Metric),
        field("tasks_executed", FieldClass::Discrete),
        field("tasks_received", FieldClass::Discrete),
        field("tasks_reexecuted", FieldClass::Discrete),
        field("update_bytes_sent", FieldClass::Discrete),
        field("verification", FieldClass::Metric),
        // -- checkpoint/restart rows (serialized only for checkpointed
        //    runs, so checkpoint-free reports stay byte-identical) --------
        field("ckpt", FieldClass::Discrete),
        field("checkpoints", FieldClass::Discrete),
        field("recoveries", FieldClass::Discrete),
        field("time_lost_s", FieldClass::Metric),
        field("ckpt_overhead_s", FieldClass::Metric),
        field("efficiency", FieldClass::Metric),
        // -- weak-scaling rows ------------------------------------------
        field("logical", FieldClass::Discrete),
        field("holes", FieldClass::Discrete),
        field("messages", FieldClass::Discrete),
        field("mean_compute_s", FieldClass::Metric),
        field("mean_comm_s", FieldClass::Metric),
        field("mean_wait_s", FieldClass::Metric),
        // -- host-side measurements -------------------------------------
        field("wall_time_ms", FieldClass::Informational),
        field("dispatches", FieldClass::Informational),
    ];

    /// The informational field names, as a plain list (derived view of
    /// [`FIELDS`]; a unit test pins the two in sync).  Kept for consumers
    /// that strip rather than classify.
    pub const INFORMATIONAL_KEYS: &[&str] = &["wall_time_ms", "dispatches"];

    /// Looks up the declared class of a field, if the schema declares it.
    pub fn field_class(name: &str) -> Option<FieldClass> {
        FIELDS.iter().find(|f| f.name == name).map(|f| f.class)
    }

    /// True if the schema declares `name` as informational.
    pub fn is_informational(name: &str) -> bool {
        field_class(name) == Some(FieldClass::Informational)
    }

    /// A typed schema-envelope violation: the version tag of a document is
    /// missing, unknown, or does not match its counterpart.  Produced by
    /// [`check_envelope`] and [`crate::diff::diff_documents`] so that tools
    /// reject incompatible reports instead of silently comparing them.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum SchemaError {
        /// The document carries no string `schema` field.
        Missing {
            /// Which document ("baseline", "candidate", a path, …).
            which: String,
        },
        /// The document's schema tag is not a version this build knows.
        Unknown {
            /// Which document.
            which: String,
            /// The tag found.
            found: String,
        },
        /// Baseline and candidate carry different schema tags.
        Mismatch {
            /// The baseline's tag.
            baseline: String,
            /// The candidate's tag.
            candidate: String,
        },
    }

    impl std::fmt::Display for SchemaError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                SchemaError::Missing { which } => {
                    write!(
                        f,
                        "{which}: no 'schema' version tag (expected \"{SCHEMA}\")"
                    )
                }
                SchemaError::Unknown { which, found } => {
                    write!(
                        f,
                        "{which}: unknown schema \"{found}\" (expected \"{SCHEMA}\")"
                    )
                }
                SchemaError::Mismatch {
                    baseline,
                    candidate,
                } => write!(
                    f,
                    "schema mismatch: baseline is \"{baseline}\", candidate is \"{candidate}\""
                ),
            }
        }
    }

    impl std::error::Error for SchemaError {}

    /// The schema tag of a document, if it carries one.
    pub fn document_schema(doc: &Json) -> Option<&str> {
        doc.get("schema").and_then(Json::as_str)
    }

    /// Validates that `doc` carries this build's schema tag.
    pub fn check_envelope(doc: &Json, which: &str) -> Result<(), SchemaError> {
        match document_schema(doc) {
            None => Err(SchemaError::Missing {
                which: which.to_string(),
            }),
            Some(tag) if tag != SCHEMA => Err(SchemaError::Unknown {
                which: which.to_string(),
                found: tag.to_string(),
            }),
            Some(_) => Ok(()),
        }
    }

    /// The checkpoint/restart columns of one run, present only on
    /// checkpointed runs: their fields are declared in [`FIELDS`] but
    /// serialized conditionally, so checkpoint-free reports (and their
    /// golden baselines) stay byte-identical across campaign versions.
    #[derive(Debug, Clone, PartialEq)]
    pub struct CkptColumns {
        /// Checkpoint-plan label (`CheckpointPlan::label`).
        pub ckpt: String,
        /// Coordinated checkpoints committed.
        pub checkpoints: usize,
        /// Rollback-recoveries performed.
        pub recoveries: usize,
        /// Virtual seconds lost to rollbacks (restarts + re-executed work).
        pub time_lost_s: f64,
        /// Virtual seconds spent writing checkpoints.
        pub ckpt_overhead_s: f64,
        /// Useful time per resource:
        /// `(makespan - time_lost - ckpt_overhead) / (makespan * degree)`.
        pub efficiency: f64,
    }

    /// One run of a campaign, as the v1 model records it (all fields
    /// except `wall_time_ms` are deterministic functions of the
    /// [`RunSpec`]).  This is the single row type the classic grid's JSON
    /// and CSV, the run cache and the serve protocol all share.
    #[derive(Debug, Clone, PartialEq)]
    pub struct RunRecord {
        /// Run id ([`RunSpec::id`]).
        pub id: String,
        /// Application name.
        pub app: String,
        /// Scale preset name.
        pub scale: String,
        /// Mode label (with degree).
        pub mode: String,
        /// Scheduler name.
        pub scheduler: String,
        /// Failure-spec label.
        pub failure: String,
        /// Run seed.
        pub seed: u64,
        /// Physical processes simulated.
        pub procs: usize,
        /// Ranks that completed the application.
        pub completed: usize,
        /// Ranks that crashed through failure injection.
        pub crashed: usize,
        /// Ranks that failed for any other reason (e.g. peers of a crashed
        /// native rank observing `ProcessFailed`).
        pub errored: usize,
        /// Crash-stop failure events recorded by the cluster.
        pub failure_events: usize,
        /// Timed crashes the failure plan scheduled before the run started
        /// (`Experiment::scheduled_crashes().len()`): a pure function of the
        /// spec, so diffed exactly like every other deterministic column.
        /// Not every scheduled crash fires — a rank that finishes before its
        /// crash time survives — which is why this is reported next to
        /// `failure_events`.
        pub scheduled_crashes: usize,
        /// Virtual makespan over the surviving ranks, in seconds.
        pub makespan_s: f64,
        /// Mean virtual time inside intra-parallel sections over completed
        /// ranks, in seconds.
        pub section_s: f64,
        /// Mean virtual update-drain time over completed ranks, in seconds.
        pub update_drain_s: f64,
        /// Total tasks executed locally (summed over completed ranks).
        pub tasks_executed: usize,
        /// Total task results received from peer replicas.
        pub tasks_received: usize,
        /// Total tasks re-executed because their owner crashed.
        pub tasks_reexecuted: usize,
        /// Total modeled update bytes sent between replicas.
        pub update_bytes_sent: usize,
        /// Application verification value (max over completed ranks; 0 when
        /// no rank completed).
        pub verification: f64,
        /// Checkpoint/restart columns, for checkpointed runs only.
        pub ckpt: Option<CkptColumns>,
        /// Host wall-clock time this run took to simulate, in milliseconds.
        /// *Informational only* (see [`FieldClass::Informational`]): a cache
        /// hit replays the value recorded when the run actually executed.
        pub wall_time_ms: f64,
    }

    impl RunRecord {
        /// Folds a facade [`RunReport`] into the flat v1 row for `spec`.
        pub fn from_run(spec: &RunSpec, scheduled_crashes: usize, report: &RunReport) -> Self {
            let ckpt = match (spec.ckpt, report.ckpt) {
                (Some(plan), Some(stats)) => Some(CkptColumns {
                    ckpt: plan.label(),
                    checkpoints: stats.checkpoints,
                    recoveries: stats.recoveries,
                    time_lost_s: stats.time_lost_s,
                    ckpt_overhead_s: stats.ckpt_overhead_s,
                    efficiency: stats.efficiency(report.makespan_s, spec.mode.degree()),
                }),
                _ => None,
            };
            RunRecord {
                id: spec.id(),
                app: spec.app.name().to_string(),
                scale: spec.scale.name().to_string(),
                mode: mode_label(spec.mode),
                scheduler: spec.scheduler.to_string(),
                failure: spec.failure.label(),
                seed: spec.seed,
                procs: report.procs,
                completed: report.completed(),
                crashed: report.crashed(),
                errored: report.errored(),
                failure_events: report.failure_events,
                scheduled_crashes,
                makespan_s: report.makespan_s,
                section_s: report.mean_section_s(),
                update_drain_s: report.mean_update_drain_s(),
                tasks_executed: report.tasks_executed(),
                tasks_received: report.tasks_received(),
                tasks_reexecuted: report.tasks_reexecuted(),
                update_bytes_sent: report.update_bytes_sent(),
                verification: report.verification(),
                ckpt,
                wall_time_ms: report.wall_time_ms,
            }
        }

        /// The record as a JSON object (field order is the schema order;
        /// the checkpoint columns appear only on checkpointed runs).
        pub fn to_json(&self) -> Json {
            let mut doc = Json::obj(vec![
                ("id", Json::Str(self.id.clone())),
                ("app", Json::Str(self.app.clone())),
                ("scale", Json::Str(self.scale.clone())),
                ("mode", Json::Str(self.mode.clone())),
                ("scheduler", Json::Str(self.scheduler.clone())),
                ("failure", Json::Str(self.failure.clone())),
                ("seed", Json::Num(self.seed as f64)),
                ("procs", Json::Num(self.procs as f64)),
                ("completed", Json::Num(self.completed as f64)),
                ("crashed", Json::Num(self.crashed as f64)),
                ("errored", Json::Num(self.errored as f64)),
                ("failure_events", Json::Num(self.failure_events as f64)),
                (
                    "scheduled_crashes",
                    Json::Num(self.scheduled_crashes as f64),
                ),
                ("makespan_s", Json::Num(self.makespan_s)),
                ("section_s", Json::Num(self.section_s)),
                ("update_drain_s", Json::Num(self.update_drain_s)),
                ("tasks_executed", Json::Num(self.tasks_executed as f64)),
                ("tasks_received", Json::Num(self.tasks_received as f64)),
                ("tasks_reexecuted", Json::Num(self.tasks_reexecuted as f64)),
                (
                    "update_bytes_sent",
                    Json::Num(self.update_bytes_sent as f64),
                ),
                ("verification", Json::Num(self.verification)),
                ("wall_time_ms", Json::Num(self.wall_time_ms)),
            ]);
            if let (Some(c), Json::Obj(fields)) = (&self.ckpt, &mut doc) {
                let at = fields.len() - 1; // keep wall_time_ms last
                fields.splice(
                    at..at,
                    [
                        ("ckpt".to_string(), Json::Str(c.ckpt.clone())),
                        ("checkpoints".to_string(), Json::Num(c.checkpoints as f64)),
                        ("recoveries".to_string(), Json::Num(c.recoveries as f64)),
                        ("time_lost_s".to_string(), Json::Num(c.time_lost_s)),
                        ("ckpt_overhead_s".to_string(), Json::Num(c.ckpt_overhead_s)),
                        ("efficiency".to_string(), Json::Num(c.efficiency)),
                    ],
                );
            }
            doc
        }

        /// Parses a record serialized by [`RunRecord::to_json`].  A missing
        /// `wall_time_ms` (stripped documents) parses as `0.0`; every
        /// deterministic field is required.
        pub fn from_json(doc: &Json) -> Result<Self, String> {
            let str_field = |name: &str| -> Result<String, String> {
                doc.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("run record: missing string field '{name}'"))
            };
            let num = |name: &str| -> Result<f64, String> {
                doc.get(name)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("run record: missing numeric field '{name}'"))
            };
            let count = |name: &str| -> Result<usize, String> { Ok(num(name)? as usize) };
            let ckpt = if doc.get("ckpt").is_some() {
                Some(CkptColumns {
                    ckpt: str_field("ckpt")?,
                    checkpoints: count("checkpoints")?,
                    recoveries: count("recoveries")?,
                    time_lost_s: num("time_lost_s")?,
                    ckpt_overhead_s: num("ckpt_overhead_s")?,
                    efficiency: num("efficiency")?,
                })
            } else {
                None
            };
            Ok(RunRecord {
                id: str_field("id")?,
                app: str_field("app")?,
                scale: str_field("scale")?,
                mode: str_field("mode")?,
                scheduler: str_field("scheduler")?,
                failure: str_field("failure")?,
                seed: num("seed")? as u64,
                procs: count("procs")?,
                completed: count("completed")?,
                crashed: count("crashed")?,
                errored: count("errored")?,
                failure_events: count("failure_events")?,
                scheduled_crashes: count("scheduled_crashes")?,
                makespan_s: num("makespan_s")?,
                section_s: num("section_s")?,
                update_drain_s: num("update_drain_s")?,
                tasks_executed: count("tasks_executed")?,
                tasks_received: count("tasks_received")?,
                tasks_reexecuted: count("tasks_reexecuted")?,
                update_bytes_sent: count("update_bytes_sent")?,
                verification: num("verification")?,
                ckpt,
                wall_time_ms: doc
                    .get("wall_time_ms")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
            })
        }
    }

    /// The aggregated result of one campaign execution: the v1 envelope.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Report {
        /// Grid name.
        pub campaign: String,
        /// Scale preset name.
        pub scale: String,
        /// Per-run results in grid order.
        pub runs: Vec<RunRecord>,
    }

    impl Report {
        /// The report as a JSON document, led by the `schema` version tag.
        /// Rendering [`Json::render`] of this value is byte-deterministic,
        /// which is what the golden-baseline gate compares against.
        pub fn to_json(&self) -> Json {
            Json::obj(vec![
                ("schema", Json::Str(SCHEMA.to_string())),
                ("campaign", Json::Str(self.campaign.clone())),
                ("scale", Json::Str(self.scale.clone())),
                (
                    "runs",
                    Json::Arr(self.runs.iter().map(RunRecord::to_json).collect()),
                ),
            ])
        }

        /// Parses a document produced by [`Report::to_json`], validating
        /// the schema envelope first.
        pub fn from_json(doc: &Json) -> Result<Self, String> {
            check_envelope(doc, "report").map_err(|e| e.to_string())?;
            let field = |name: &str| -> Result<String, String> {
                doc.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("report: missing string field '{name}'"))
            };
            let runs = doc
                .get("runs")
                .and_then(Json::as_arr)
                .ok_or("report: missing 'runs' array")?
                .iter()
                .map(RunRecord::from_json)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Report {
                campaign: field("campaign")?,
                scale: field("scale")?,
                runs,
            })
        }

        /// The report as CSV (header + one row per run), deterministic.
        pub fn to_csv(&self) -> String {
            let mut out = String::from(
                "id,app,scale,mode,scheduler,failure,seed,procs,completed,crashed,errored,\
                 failure_events,scheduled_crashes,makespan_s,section_s,update_drain_s,\
                 tasks_executed,tasks_received,tasks_reexecuted,update_bytes_sent,verification,\
                 ckpt,checkpoints,recoveries,time_lost_s,ckpt_overhead_s,efficiency,\
                 wall_time_ms\n",
            );
            for r in &self.runs {
                let (ckpt, checkpoints, recoveries, time_lost_s, ckpt_overhead_s, efficiency) =
                    match &r.ckpt {
                        Some(c) => (
                            c.ckpt.as_str(),
                            c.checkpoints,
                            c.recoveries,
                            c.time_lost_s,
                            c.ckpt_overhead_s,
                            c.efficiency,
                        ),
                        None => ("", 0, 0, 0.0, 0.0, 0.0),
                    };
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                    r.id,
                    r.app,
                    r.scale,
                    r.mode,
                    r.scheduler,
                    r.failure,
                    r.seed,
                    r.procs,
                    r.completed,
                    r.crashed,
                    r.errored,
                    r.failure_events,
                    r.scheduled_crashes,
                    r.makespan_s,
                    r.section_s,
                    r.update_drain_s,
                    r.tasks_executed,
                    r.tasks_received,
                    r.tasks_reexecuted,
                    r.update_bytes_sent,
                    r.verification,
                    ckpt,
                    checkpoints,
                    recoveries,
                    time_lost_s,
                    ckpt_overhead_s,
                    efficiency,
                    r.wall_time_ms,
                ));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::v1::{self, FieldClass, RunRecord};
    use super::CampaignReport;
    use crate::json::Json;

    fn sample_record() -> RunRecord {
        RunRecord {
            id: "hpccg-tiny-native-static-block-none-s42".into(),
            app: "hpccg".into(),
            scale: "tiny".into(),
            mode: "native".into(),
            scheduler: "static-block".into(),
            failure: "none".into(),
            seed: 42,
            procs: 2,
            completed: 2,
            crashed: 0,
            errored: 0,
            failure_events: 0,
            scheduled_crashes: 0,
            makespan_s: 1.5,
            section_s: 0.75,
            update_drain_s: 0.25,
            tasks_executed: 64,
            tasks_received: 0,
            tasks_reexecuted: 0,
            update_bytes_sent: 0,
            verification: 1e-6,
            ckpt: None,
            wall_time_ms: 12.5,
        }
    }

    fn checkpointed_record() -> RunRecord {
        RunRecord {
            id: "hpccg-tiny-native-static-block-none-s42-daly-c0.005-r0.01".into(),
            failure: "poisson-weibull-0.7-1-h1".into(),
            ckpt: Some(v1::CkptColumns {
                ckpt: "daly-c0.005-r0.01".into(),
                checkpoints: 3,
                recoveries: 1,
                time_lost_s: 0.04,
                ckpt_overhead_s: 0.015,
                efficiency: 0.9,
            }),
            ..sample_record()
        }
    }

    fn sample() -> CampaignReport {
        CampaignReport {
            campaign: "smoke".into(),
            scale: "tiny".into(),
            runs: vec![sample_record()],
        }
    }

    #[test]
    fn json_rendering_is_parsable_stable_and_schema_tagged() {
        let report = sample();
        let text = report.to_json().render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            v1::document_schema(&parsed),
            Some(v1::SCHEMA),
            "the envelope leads with the schema version tag"
        );
        assert_eq!(parsed.get("campaign").and_then(Json::as_str), Some("smoke"));
        let runs = parsed.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].get("procs").and_then(Json::as_f64), Some(2.0));
        assert_eq!(parsed.render(), text);
        // And the whole envelope round-trips through the typed model.
        assert_eq!(CampaignReport::from_json(&parsed).unwrap(), report);
    }

    #[test]
    fn run_records_round_trip_through_json() {
        let record = sample_record();
        let doc = record.to_json();
        assert_eq!(RunRecord::from_json(&doc).unwrap(), record);
        // A stripped record (no wall clock) still parses; the host field
        // defaults to zero.
        let mut stripped = doc.clone();
        crate::diff::strip_informational(&mut stripped);
        let parsed = RunRecord::from_json(&stripped).unwrap();
        assert_eq!(parsed.wall_time_ms, 0.0);
        assert_eq!(
            RunRecord {
                wall_time_ms: 0.0,
                ..record
            },
            parsed
        );
        // A missing deterministic field is an error, not a default.
        let broken = Json::obj(vec![("id", Json::Str("x".into()))]);
        assert!(RunRecord::from_json(&broken).is_err());
    }

    #[test]
    fn envelope_validation_is_typed() {
        let good = sample().to_json();
        assert!(v1::check_envelope(&good, "report").is_ok());
        let missing = Json::obj(vec![("campaign", Json::Str("x".into()))]);
        assert_eq!(
            v1::check_envelope(&missing, "baseline"),
            Err(v1::SchemaError::Missing {
                which: "baseline".into()
            })
        );
        let unknown = Json::obj(vec![("schema", Json::Str("ipr-report/9".into()))]);
        assert_eq!(
            v1::check_envelope(&unknown, "candidate"),
            Err(v1::SchemaError::Unknown {
                which: "candidate".into(),
                found: "ipr-report/9".into()
            })
        );
        assert!(CampaignReport::from_json(&missing).is_err());
    }

    #[test]
    fn field_registry_classifies_every_serialized_field() {
        // Every field the sample record serializes is declared.
        if let Json::Obj(fields) = sample_record().to_json() {
            for (name, _) in fields {
                assert!(
                    v1::field_class(&name).is_some(),
                    "field '{name}' is serialized but not declared in v1::FIELDS"
                );
            }
        } else {
            unreachable!("records serialize as objects");
        }
        // The derived informational list matches the registry.
        let from_registry: Vec<&str> = v1::FIELDS
            .iter()
            .filter(|f| f.class == FieldClass::Informational)
            .map(|f| f.name)
            .collect();
        assert_eq!(from_registry, v1::INFORMATIONAL_KEYS);
        // Spot checks of the three classes.
        assert_eq!(v1::field_class("seed"), Some(FieldClass::Discrete));
        assert_eq!(v1::field_class("makespan_s"), Some(FieldClass::Metric));
        assert!(v1::is_informational("wall_time_ms"));
        assert!(v1::is_informational("dispatches"));
        assert!(!v1::is_informational("makespan_s"));
        assert_eq!(v1::field_class("bogus"), None);
    }

    #[test]
    fn checkpoint_columns_serialize_conditionally_and_round_trip() {
        // Checkpoint-free records carry no ckpt keys at all — that is what
        // keeps pre-existing golden baselines byte-identical.
        let plain = sample_record().to_json();
        for key in [
            "ckpt",
            "checkpoints",
            "recoveries",
            "time_lost_s",
            "ckpt_overhead_s",
            "efficiency",
        ] {
            assert!(plain.get(key).is_none(), "unexpected '{key}' field");
            assert!(
                v1::field_class(key).is_some(),
                "'{key}' must be declared in v1::FIELDS"
            );
        }
        // Checkpointed records serialize and round-trip the columns, with
        // wall_time_ms kept last.
        let record = checkpointed_record();
        let doc = record.to_json();
        assert_eq!(
            doc.get("ckpt").and_then(Json::as_str),
            Some("daly-c0.005-r0.01")
        );
        assert_eq!(doc.get("checkpoints").and_then(Json::as_f64), Some(3.0));
        if let Json::Obj(fields) = &doc {
            assert_eq!(fields.last().unwrap().0, "wall_time_ms");
            for (name, _) in fields {
                assert!(
                    v1::field_class(name).is_some(),
                    "field '{name}' is serialized but not declared in v1::FIELDS"
                );
            }
        }
        assert_eq!(RunRecord::from_json(&doc).unwrap(), record);
        // The CSV export always carries the columns (empty for
        // checkpoint-free rows); it is a convenience view, never gated.
        let report = CampaignReport {
            campaign: "ckpt".into(),
            scale: "tiny".into(),
            runs: vec![sample_record(), checkpointed_record()],
        };
        let csv = report.to_csv();
        assert!(csv.lines().next().unwrap().contains(",ckpt,checkpoints,"));
        assert!(csv.contains(",daly-c0.005-r0.01,3,1,"));
    }

    #[test]
    fn csv_has_a_row_per_run() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("id,app,scale,"));
        assert!(lines[1].starts_with("hpccg-tiny-native-static-block-none-s42,hpccg,"));
    }
}
