//! Minimal JSON value, writer and parser.
//!
//! The build environment has no crates.io access (the workspace `serde` is a
//! no-op shim), so campaign reports carry their own JSON layer.  The writer
//! is fully deterministic — object keys keep insertion order, floats use
//! Rust's shortest round-trip formatting — which is what lets a campaign
//! JSON act as a byte-comparable golden baseline.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are rendered without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order so rendering is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object values.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent, trailing
    /// newline), deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the value as a single line (no indentation, no trailing
    /// newline) — the form JSONL streams require.  Just as deterministic as
    /// [`Json::render`], and parsed by the same [`Json::parse`].
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; a non-finite metric is a bug upstream but
        // must not produce an unparsable report.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::Str("smoke".into())),
            ("count", Json::Num(3.0)),
            ("time", Json::Num(0.125)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "runs",
                Json::Arr(vec![
                    Json::obj(vec![("id", Json::Str("a".into()))]),
                    Json::obj(vec![("id", Json::Str("b".into()))]),
                ]),
            ),
        ]);
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        // Rendering is idempotent (byte-identical).
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(3.0).render(), "3\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
    }

    #[test]
    fn strings_escape_control_characters() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into());
        let text = s.render();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
        assert_eq!(Json::parse(&text).unwrap(), s);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nulL").is_err());
    }

    #[test]
    fn accessors() {
        let doc = Json::parse("{\"a\": 1, \"b\": \"x\", \"c\": [1, 2]}").unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("c").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(doc.get("d"), None);
    }
}
