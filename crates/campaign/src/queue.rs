//! A long-running, work-stealing executor pool.
//!
//! The batch runner ([`crate::runner::run_specs`]) and the sweep service
//! ([`mod@crate::serve`]) share this pool: a fixed set of worker threads, one
//! double-ended job queue per worker, and stealing between them.  Submitted
//! jobs are distributed round-robin across the per-worker queues; each
//! worker pops its own queue from the *front* and, when empty, steals from
//! the *back* of a sibling's queue — the classic work-stealing shape, here
//! built from mutex-guarded deques because the crate forbids `unsafe`
//! (`#![deny(unsafe_code)]`), so a lock-free Chase–Lev deque is not on the
//! table.  Campaign runs are milliseconds long, so per-job lock traffic is
//! noise; what matters is that many concurrent submitters keep every worker
//! busy without a single contended queue.
//!
//! The pool is *long-running*: it accepts submissions from any thread at
//! any time, [`ExecutorPool::drain`] waits for quiescence without stopping
//! the workers (the serve loop drains between jobs), and
//! [`ExecutorPool::shutdown`] drains and joins gracefully.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// How long an idle worker sleeps before re-checking the queues on its
/// own.  Wakeups are signalled on every submit, so this is a backstop, not
/// the scheduling mechanism.
const IDLE_RECHECK: Duration = Duration::from_millis(25);

struct Shared {
    /// One deque per worker; owner pops the front, thieves pop the back.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs submitted and not yet finished executing.
    pending: AtomicUsize,
    /// Set once by [`ExecutorPool::shutdown`]; workers exit when the queues
    /// are empty and this is set.
    stopping: AtomicBool,
    /// Round-robin cursor for submissions.
    next: AtomicUsize,
    /// Workers sleep here when every queue is empty.
    work_mutex: Mutex<()>,
    work_cond: Condvar,
    /// Drainers sleep here until `pending` reaches zero.
    idle_mutex: Mutex<()>,
    idle_cond: Condvar,
}

impl Shared {
    fn pop_any(&self, own: usize) -> Option<Job> {
        // Own queue first, from the front (the oldest job submitted to us).
        if let Some(job) = self.queues[own].lock().pop_front() {
            return Some(job);
        }
        // Then steal from siblings, from the back, scanning round-robin
        // starting after our own slot so thieves spread out.
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (own + offset) % n;
            if let Some(job) = self.queues[victim].lock().pop_back() {
                return Some(job);
            }
        }
        None
    }

    fn finish_one(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _quiet = self.idle_mutex.lock();
            self.idle_cond.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared, own: usize) {
    loop {
        if let Some(job) = shared.pop_any(own) {
            job();
            shared.finish_one();
            continue;
        }
        // Nothing to do: re-check under the signal lock so a submission
        // racing with this check cannot slip between "queues are empty"
        // and "wait" (submitters take the same lock before notifying).
        let mut guard = shared.work_mutex.lock();
        let queues_empty = shared.queues.iter().all(|q| q.lock().is_empty());
        if !queues_empty {
            continue;
        }
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let _ = shared.work_cond.wait_for(&mut guard, IDLE_RECHECK);
    }
}

/// A fixed-size pool of work-stealing executor threads (see the module
/// docs for the queueing discipline).
pub struct ExecutorPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ExecutorPool {
    /// Starts a pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            stopping: AtomicBool::new(false),
            next: AtomicUsize::new(0),
            work_mutex: Mutex::new(()),
            work_cond: Condvar::new(),
            idle_mutex: Mutex::new(()),
            idle_cond: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("campaign-exec-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn executor worker")
            })
            .collect();
        ExecutorPool {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs submitted and not yet finished.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::SeqCst)
    }

    /// Enqueues a job.  Callable from any thread, including from inside a
    /// running job (workers never block on submission).  Panics if called
    /// after [`ExecutorPool::shutdown`] began (jobs would be dropped).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        assert!(
            !self.shared.stopping.load(Ordering::SeqCst),
            "submit to a stopping ExecutorPool"
        );
        // Count before enqueueing so `drain` can never observe the queue
        // with the job but `pending` without it.
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        let slot = self.shared.next.fetch_add(1, Ordering::SeqCst) % self.workers.len();
        self.shared.queues[slot].lock().push_back(Box::new(job));
        // Pair with the worker's check-then-wait under the same lock.
        drop(self.shared.work_mutex.lock());
        self.shared.work_cond.notify_one();
    }

    /// Blocks until every submitted job has finished.  The workers stay
    /// alive; more jobs can be submitted afterwards (or concurrently — in
    /// that case drain waits for those too, returning at *a* quiescent
    /// point).
    pub fn drain(&self) {
        let mut guard = self.shared.idle_mutex.lock();
        while self.shared.pending.load(Ordering::SeqCst) != 0 {
            let _ = self.shared.idle_cond.wait_for(&mut guard, IDLE_RECHECK);
        }
    }

    /// Drains outstanding work, then stops and joins every worker.
    pub fn shutdown(mut self) {
        self.drain();
        self.shared.stopping.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.work_mutex.lock();
        }
        self.shared.work_cond.notify_all();
        for handle in self.workers.drain(..) {
            handle.join().expect("executor worker panicked");
        }
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        // Graceful even when dropped without an explicit shutdown (e.g. a
        // test panicking past it): finish queued work, then join.
        if self.workers.is_empty() {
            return;
        }
        self.shared.stopping.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.work_mutex.lock();
        }
        self.shared.work_cond.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executes_every_job_exactly_once() {
        let pool = ExecutorPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(pool.pending(), 0);
        pool.shutdown();
    }

    #[test]
    fn accepts_submissions_from_many_threads() {
        let pool = Arc::new(ExecutorPool::new(3));
        let counter = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..25 {
                        let counter = Arc::clone(&counter);
                        pool.submit(move || {
                            counter.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        pool.drain();
        assert_eq!(counter.load(Ordering::SeqCst), 8 * 25);
    }

    #[test]
    fn drain_is_reusable_between_batches() {
        let pool = ExecutorPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for round in 1..=3 {
            for _ in 0..10 {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            pool.drain();
            assert_eq!(counter.load(Ordering::SeqCst), round * 10);
        }
        pool.shutdown();
    }

    #[test]
    fn siblings_steal_from_a_loaded_queue() {
        // One long job pins worker 0 while round-robin keeps handing it
        // every even-numbered submission; the only way the batch finishes
        // promptly is siblings stealing worker 0's backlog.
        let pool = ExecutorPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            pool.submit(move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        for _ in 0..40 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        // All 40 short jobs must complete while worker 0 is still pinned.
        let start = std::time::Instant::now();
        while counter.load(Ordering::SeqCst) != 40 {
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "stuck at {} of 40 with one worker pinned",
                counter.load(Ordering::SeqCst)
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        gate.store(true, Ordering::SeqCst);
        pool.shutdown();
    }

    #[test]
    fn shutdown_finishes_queued_work_first() {
        let pool = ExecutorPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                std::thread::sleep(Duration::from_micros(100));
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }
}
