//! Run specifications: one fully-determined simulation run of a campaign.

use apps::AppId;
use ipr_bench::ExperimentScale;
use replication::{ExecutionMode, FailureRate};

/// Failure behaviour of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureSpec {
    /// No failures.
    None,
    /// Every physical rank draws its crash times from a Poisson process
    /// with the given intensity over `[0, horizon_s)` virtual seconds
    /// (deterministic per (run seed, rank); see
    /// [`replication::sample_failure_trace`]).
    Poisson {
        /// Intensity function of the arrival process.
        rate: FailureRate,
        /// Observation horizon in virtual seconds.
        horizon_s: f64,
    },
}

impl FailureSpec {
    /// Compact label used in run ids and reports, e.g. `none` or
    /// `poisson-const-0.5-h2`.
    pub fn label(&self) -> String {
        match self {
            FailureSpec::None => "none".to_string(),
            FailureSpec::Poisson { rate, horizon_s } => {
                format!("poisson-{}-h{horizon_s}", rate.label())
            }
        }
    }

    /// Parses the output of [`FailureSpec::label`].
    pub fn parse(s: &str) -> Option<Self> {
        if s == "none" {
            return Some(FailureSpec::None);
        }
        let rest = s.strip_prefix("poisson-")?;
        let h_at = rest.rfind("-h")?;
        let rate = FailureRate::parse(&rest[..h_at])?;
        let horizon_s = rest[h_at + 2..].parse::<f64>().ok()?;
        Some(FailureSpec::Poisson { rate, horizon_s })
    }
}

/// Mode label including the replication degree (`native`, `replicated2`,
/// `intra2`, …).
pub fn mode_label(mode: ExecutionMode) -> String {
    match mode {
        ExecutionMode::Native => "native".to_string(),
        ExecutionMode::Replicated { degree } => format!("replicated{degree}"),
        ExecutionMode::IntraParallel { degree } => format!("intra{degree}"),
    }
}

/// Parses the output of [`mode_label`].
pub fn parse_mode(s: &str) -> Option<ExecutionMode> {
    if s == "native" {
        return Some(ExecutionMode::Native);
    }
    if let Some(d) = s.strip_prefix("replicated") {
        return d
            .parse()
            .ok()
            .map(|degree| ExecutionMode::Replicated { degree });
    }
    if let Some(d) = s.strip_prefix("intra") {
        return d
            .parse()
            .ok()
            .map(|degree| ExecutionMode::IntraParallel { degree });
    }
    None
}

/// One fully-determined, self-contained simulation run.  Expanding a
/// [`crate::grid::CampaignGrid`] produces a vector of these; each one can be
/// executed independently (and therefore in parallel) and reproduced exactly
/// from its fields alone.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Position of the run in the expanded grid (stable across executions).
    pub index: usize,
    /// Application to run.
    pub app: AppId,
    /// Experiment scale preset (process counts and problem sizes).
    pub scale: ExperimentScale,
    /// Execution mode (native / replicated / intra) with its degree.
    pub mode: ExecutionMode,
    /// Scheduler for intra-parallel sections (ipr-core registry name).
    pub scheduler: &'static str,
    /// Failure behaviour.
    pub failure: FailureSpec,
    /// Seed for the run's deterministic randomness (cluster + failure
    /// traces).
    pub seed: u64,
}

impl RunSpec {
    /// Unique, human-readable run id, a pure function of the configuration
    /// (not of the index), e.g. `hpccg-tiny-intra2-static-block-none-s42`.
    pub fn id(&self) -> String {
        format!(
            "{}-{}-{}-{}-{}-s{}",
            self.app.name(),
            self.scale.name(),
            mode_label(self.mode),
            self.scheduler,
            self.failure.label(),
            self.seed
        )
    }

    /// Number of physical processes the run simulates.
    pub fn procs(&self) -> usize {
        self.scale.fig6_logical_procs() * self.mode.degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_labels_round_trip() {
        let specs = [
            FailureSpec::None,
            FailureSpec::Poisson {
                rate: FailureRate::Constant(0.5),
                horizon_s: 2.0,
            },
            FailureSpec::Poisson {
                rate: FailureRate::Ramp {
                    start: 0.0,
                    end: 1.5,
                },
                horizon_s: 10.0,
            },
        ];
        for s in specs {
            assert_eq!(FailureSpec::parse(&s.label()), Some(s), "{}", s.label());
        }
        assert_eq!(FailureSpec::parse("poisson-const-0.5"), None);
        assert_eq!(FailureSpec::parse("bogus"), None);
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in [
            ExecutionMode::Native,
            ExecutionMode::Replicated { degree: 2 },
            ExecutionMode::IntraParallel { degree: 3 },
        ] {
            assert_eq!(parse_mode(&mode_label(mode)), Some(mode));
        }
        assert_eq!(parse_mode("intra"), None);
        assert_eq!(parse_mode("weird2"), None);
    }

    #[test]
    fn run_id_is_a_pure_function_of_the_configuration() {
        let spec = RunSpec {
            index: 7,
            app: AppId::Hpccg,
            scale: ExperimentScale::Tiny,
            mode: ExecutionMode::IntraParallel { degree: 2 },
            scheduler: "static-block",
            failure: FailureSpec::None,
            seed: 42,
        };
        assert_eq!(spec.id(), "hpccg-tiny-intra2-static-block-none-s42");
        assert_eq!(spec.procs(), 4);
        let moved = RunSpec {
            index: 9,
            ..spec.clone()
        };
        assert_eq!(moved.id(), spec.id());
    }
}
