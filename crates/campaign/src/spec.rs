//! Run specifications: one fully-determined simulation run of a campaign.
//!
//! A [`RunSpec`] is the grid-expansion form of the facade's typed
//! [`Experiment`]: the six grid axes (app × scale × mode × scheduler ×
//! failure × seed) plus a stable grid index.  Those six axes convert
//! losslessly in both directions ([`RunSpec::experiment`] /
//! [`RunSpec::from_experiment`]), which is what keeps the campaign engine
//! a thin layer over the unified experiment surface.  The builder-only
//! overrides (`logical_procs`, `tasks_per_section`, `inject_failure`, …)
//! are deliberately *not* part of a campaign grid and are therefore not
//! carried by a `RunSpec`.

use apps::AppId;
use apps::ExperimentScale;
use intra_replication::{CheckpointPlan, Experiment};
use ipr_core::SchedulerKind;
use replication::ExecutionMode;

/// Failure behaviour of one run — the facade's failure-plan axis, re-used
/// verbatim (`FailureSpec` is the campaign-historical name).
pub use intra_replication::FailurePlan as FailureSpec;

/// Mode label including the replication degree (`native`, `replicated2`,
/// `intra2`, …).
pub fn mode_label(mode: ExecutionMode) -> String {
    match mode {
        ExecutionMode::Native => "native".to_string(),
        ExecutionMode::Replicated { degree } => format!("replicated{degree}"),
        ExecutionMode::IntraParallel { degree } => format!("intra{degree}"),
    }
}

/// Parses the output of [`mode_label`].
pub fn parse_mode(s: &str) -> Option<ExecutionMode> {
    if s == "native" {
        return Some(ExecutionMode::Native);
    }
    if let Some(d) = s.strip_prefix("replicated") {
        return d
            .parse()
            .ok()
            .map(|degree| ExecutionMode::Replicated { degree });
    }
    if let Some(d) = s.strip_prefix("intra") {
        return d
            .parse()
            .ok()
            .map(|degree| ExecutionMode::IntraParallel { degree });
    }
    None
}

/// One fully-determined, self-contained simulation run.  Expanding a
/// [`crate::grid::CampaignGrid`] produces a vector of these; each one can be
/// executed independently (and therefore in parallel) and reproduced exactly
/// from its fields alone.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Position of the run in the expanded grid (stable across executions).
    pub index: usize,
    /// Application to run.
    pub app: AppId,
    /// Experiment scale preset (process counts and problem sizes).
    pub scale: ExperimentScale,
    /// Execution mode (native / replicated / intra) with its degree.
    pub mode: ExecutionMode,
    /// Scheduler for intra-parallel sections.
    pub scheduler: SchedulerKind,
    /// Failure behaviour.
    pub failure: FailureSpec,
    /// Seed for the run's deterministic randomness (cluster + failure
    /// traces).
    pub seed: u64,
    /// Coordinated checkpoint/restart plan, if any (the C/R axis of the
    /// replication-vs-C/R campaign).
    pub ckpt: Option<CheckpointPlan>,
}

impl RunSpec {
    /// Unique, human-readable run id, a pure function of the configuration
    /// (not of the index), e.g. `hpccg-tiny-intra2-static-block-none-s42`.
    pub fn id(&self) -> String {
        let mut id = format!(
            "{}-{}-{}-{}-{}-s{}",
            self.app.name(),
            self.scale.name(),
            mode_label(self.mode),
            self.scheduler,
            self.failure.label(),
            self.seed
        );
        // Appended (never inlined) so checkpoint-free ids are byte-stable
        // across campaign versions.
        if let Some(plan) = self.ckpt {
            id.push('-');
            id.push_str(&plan.label());
        }
        id
    }

    /// Number of physical processes the run simulates.
    pub fn procs(&self) -> usize {
        self.scale.fig6_logical_procs() * self.mode.degree()
    }

    /// Converts the spec into the facade's validated [`Experiment`].
    ///
    /// Native runs with a failure plan are a deliberate campaign axis (they
    /// measure how an *unprotected* run dies), so the conversion sets the
    /// builder's explicit
    /// [`allow_unrecoverable_failures`](intra_replication::ExperimentBuilder::allow_unrecoverable_failures)
    /// opt-in for them.
    pub fn experiment(&self) -> intra_replication::Result<Experiment> {
        let mut builder = Experiment::builder()
            .app(self.app)
            .scale(self.scale)
            .execution_mode(self.mode)
            .scheduler(self.scheduler)
            .failures(self.failure)
            .seed(self.seed);
        if self.mode == ExecutionMode::Native && !self.failure.is_none() && self.ckpt.is_none() {
            builder = builder.allow_unrecoverable_failures();
        }
        if let Some(plan) = self.ckpt {
            builder = builder.checkpointing(plan);
        }
        builder.build()
    }

    /// The spec as a JSON object over its six axis labels (the `index` is
    /// assigned by the receiver, not serialized) — the wire form the serve
    /// protocol's job files use for explicit spec lists.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let mut doc = Json::obj(vec![
            ("app", Json::Str(self.app.name().to_string())),
            ("scale", Json::Str(self.scale.name().to_string())),
            ("mode", Json::Str(mode_label(self.mode))),
            ("scheduler", Json::Str(self.scheduler.to_string())),
            ("failure", Json::Str(self.failure.label())),
            ("seed", Json::Num(self.seed as f64)),
        ]);
        // Appended only when set, so checkpoint-free wire forms (and the
        // job files hashed from them) stay byte-identical.
        if let Some(plan) = self.ckpt {
            if let Json::Obj(fields) = &mut doc {
                fields.push(("ckpt".to_string(), Json::Str(plan.label())));
            }
        }
        doc
    }

    /// Parses the output of [`RunSpec::to_json`], assigning `index`.
    /// Every axis label goes through the same parser that accepts it on
    /// the command line, so the wire form can express exactly what the CLI
    /// can.
    pub fn from_json(index: usize, doc: &crate::json::Json) -> Result<Self, String> {
        use crate::json::Json;
        let label = |name: &str| -> Result<&str, String> {
            doc.get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("run spec: missing string field '{name}'"))
        };
        let parse = |name: &str, err: &str| -> Result<String, String> {
            label(name).map(str::to_string).and_then(|v| {
                if v.is_empty() {
                    Err(format!("run spec: {err}: empty '{name}'"))
                } else {
                    Ok(v)
                }
            })
        };
        let app = AppId::parse(&parse("app", "unknown app")?)
            .ok_or_else(|| format!("run spec: unknown app '{}'", label("app").unwrap_or("?")))?;
        let scale = ExperimentScale::parse(&parse("scale", "unknown scale")?).ok_or_else(|| {
            format!(
                "run spec: unknown scale '{}'",
                label("scale").unwrap_or("?")
            )
        })?;
        let mode = parse_mode(&parse("mode", "unknown mode")?)
            .ok_or_else(|| format!("run spec: unknown mode '{}'", label("mode").unwrap_or("?")))?;
        let scheduler: SchedulerKind =
            parse("scheduler", "unknown scheduler")?
                .parse()
                .map_err(|_| {
                    format!(
                        "run spec: unknown scheduler '{}'",
                        label("scheduler").unwrap_or("?")
                    )
                })?;
        let failure =
            FailureSpec::parse(&parse("failure", "unknown failure")?).ok_or_else(|| {
                format!(
                    "run spec: unknown failure '{}'",
                    label("failure").unwrap_or("?")
                )
            })?;
        let seed = doc
            .get("seed")
            .and_then(Json::as_f64)
            .ok_or("run spec: missing numeric field 'seed'")? as u64;
        let ckpt = match doc.get("ckpt").map(|v| v.as_str()) {
            None => None,
            Some(Some(label)) => Some(
                CheckpointPlan::parse(label)
                    .ok_or_else(|| format!("run spec: unknown ckpt plan '{label}'"))?,
            ),
            Some(None) => return Err("run spec: 'ckpt' must be a string label".to_string()),
        };
        Ok(RunSpec {
            index,
            app,
            scale,
            mode,
            scheduler,
            failure,
            seed,
            ckpt,
        })
    }

    /// The inverse of [`RunSpec::experiment`] on the six grid axes:
    /// re-derives the grid form of an experiment (`index` is campaign
    /// bookkeeping, not an experiment axis).
    ///
    /// Builder-only overrides (`logical_procs`, `tasks_per_section`,
    /// `modeled_scale`, a custom machine model, hand-placed
    /// `inject_failure` points) have no grid representation and are
    /// dropped: for an experiment carrying any of them,
    /// `RunSpec::from_experiment(i, &e).experiment()` reconstructs the
    /// grid-default experiment with the same six axes, not `e` itself.
    pub fn from_experiment(index: usize, experiment: &Experiment) -> Self {
        RunSpec {
            index,
            app: experiment.app(),
            scale: experiment.scale(),
            mode: experiment.execution_mode(),
            scheduler: experiment.scheduler(),
            failure: experiment.failures(),
            seed: experiment.seed(),
            ckpt: experiment.ckpt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replication::FailureRate;

    #[test]
    fn failure_labels_round_trip() {
        let specs = [
            FailureSpec::None,
            FailureSpec::Poisson {
                rate: FailureRate::Constant(0.5),
                horizon_s: 2.0,
            },
            FailureSpec::Poisson {
                rate: FailureRate::Ramp {
                    start: 0.0,
                    end: 1.5,
                },
                horizon_s: 10.0,
            },
        ];
        for s in specs {
            assert_eq!(FailureSpec::parse(&s.label()), Some(s), "{}", s.label());
        }
        assert_eq!(FailureSpec::parse("poisson-const-0.5"), None);
        assert_eq!(FailureSpec::parse("bogus"), None);
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in [
            ExecutionMode::Native,
            ExecutionMode::Replicated { degree: 2 },
            ExecutionMode::IntraParallel { degree: 3 },
        ] {
            assert_eq!(parse_mode(&mode_label(mode)), Some(mode));
        }
        assert_eq!(parse_mode("intra"), None);
        assert_eq!(parse_mode("weird2"), None);
    }

    #[test]
    fn run_id_is_a_pure_function_of_the_configuration() {
        let spec = RunSpec {
            index: 7,
            app: AppId::Hpccg,
            scale: ExperimentScale::Tiny,
            mode: ExecutionMode::IntraParallel { degree: 2 },
            scheduler: SchedulerKind::StaticBlock,
            failure: FailureSpec::None,
            seed: 42,
            ckpt: None,
        };
        assert_eq!(spec.id(), "hpccg-tiny-intra2-static-block-none-s42");
        assert_eq!(spec.procs(), 4);
        let moved = RunSpec {
            index: 9,
            ..spec.clone()
        };
        assert_eq!(moved.id(), spec.id());
    }

    #[test]
    fn specs_round_trip_through_json() {
        let spec = RunSpec {
            index: 5,
            app: AppId::Gtc,
            scale: ExperimentScale::Tiny,
            mode: ExecutionMode::Replicated { degree: 2 },
            scheduler: SchedulerKind::Adaptive,
            failure: FailureSpec::Poisson {
                rate: FailureRate::Constant(0.5),
                horizon_s: 1.0,
            },
            seed: 99,
            ckpt: None,
        };
        let doc = spec.to_json();
        assert_eq!(RunSpec::from_json(5, &doc).unwrap(), spec);
        // The index is receiver-assigned, not part of the wire form.
        assert_eq!(RunSpec::from_json(0, &doc).unwrap().index, 0);
        // Unknown labels surface as errors, not defaults.
        let bad = crate::json::Json::parse(
            r#"{"app": "bogus", "scale": "tiny", "mode": "native",
                "scheduler": "static-block", "failure": "none", "seed": 1}"#,
        )
        .unwrap();
        assert!(RunSpec::from_json(0, &bad).unwrap_err().contains("app"));
    }

    #[test]
    fn specs_convert_to_experiments_and_back() {
        let spec = RunSpec {
            index: 3,
            app: AppId::Gtc,
            scale: ExperimentScale::Tiny,
            mode: ExecutionMode::IntraParallel { degree: 2 },
            scheduler: SchedulerKind::Adaptive,
            failure: FailureSpec::Poisson {
                rate: FailureRate::Constant(0.5),
                horizon_s: 1.0,
            },
            seed: 44,
            ckpt: None,
        };
        let experiment = spec.experiment().unwrap();
        assert_eq!(RunSpec::from_experiment(3, &experiment), spec);
        // Native + failure plan converts through the explicit opt-in.
        let native = RunSpec {
            mode: ExecutionMode::Native,
            ..spec.clone()
        };
        let experiment = native.experiment().unwrap();
        assert_eq!(RunSpec::from_experiment(3, &experiment), native);
        // An inexpressible degree surfaces as a typed error.
        let bad = RunSpec {
            mode: ExecutionMode::Replicated { degree: 1 },
            ..spec
        };
        assert!(bad.experiment().is_err());
    }
}
