//! Declarative sweep grids.
//!
//! A [`CampaignGrid`] is the cross product of seven axes — application ×
//! scale × execution mode × scheduler × failure behaviour × checkpoint
//! plan × seed — that expands into independent, deterministic
//! [`RunSpec`]s.  Built-in presets cover the CI smoke gate, a failure-rate
//! sweep, a scheduler comparison, a replication-vs-C/R grid and a broad
//! "full" grid; custom grids are plain struct literals.

use crate::spec::{FailureSpec, RunSpec};
use apps::{AppId, ExperimentScale};
use intra_replication::CheckpointPlan;
use ipr_core::SchedulerKind;
use replication::{ExecutionMode, FailureDomain, FailureRate};

/// A declarative sweep: the cross product of the seven axes below.
#[derive(Debug, Clone)]
pub struct CampaignGrid {
    /// Grid name (used in reports and output file names).
    pub name: String,
    /// Experiment scale shared by every run of the grid.
    pub scale: ExperimentScale,
    /// Applications to sweep.
    pub apps: Vec<AppId>,
    /// Execution modes to sweep.
    pub modes: Vec<ExecutionMode>,
    /// Schedulers to sweep.
    pub schedulers: Vec<SchedulerKind>,
    /// Failure behaviours to sweep.
    pub failures: Vec<FailureSpec>,
    /// Checkpoint plans to sweep (`None` = no checkpointing; the C/R axis
    /// of the replication-vs-C/R comparison).
    pub ckpts: Vec<Option<CheckpointPlan>>,
    /// Seeds to sweep (each seed is an independent replication of the whole
    /// grid point).
    pub seeds: Vec<u64>,
}

impl CampaignGrid {
    /// Expands the grid into its runs, in deterministic axis order
    /// (app-major, seed-minor).
    pub fn expand(&self) -> Vec<RunSpec> {
        let mut specs = Vec::new();
        for &app in &self.apps {
            for &mode in &self.modes {
                for &scheduler in &self.schedulers {
                    for &failure in &self.failures {
                        for &ckpt in &self.ckpts {
                            for &seed in &self.seeds {
                                specs.push(RunSpec {
                                    index: specs.len(),
                                    app,
                                    scale: self.scale,
                                    mode,
                                    scheduler,
                                    failure,
                                    seed,
                                    ckpt,
                                });
                            }
                        }
                    }
                }
            }
        }
        specs
    }

    /// The CI smoke grid: two applications, all three execution modes, with
    /// and without Poisson failures, at the tiny scale.  Small enough to run
    /// on every push, wide enough to cover the replication/recovery
    /// machinery end to end.
    pub fn smoke() -> Self {
        CampaignGrid {
            name: "smoke".to_string(),
            scale: ExperimentScale::Tiny,
            apps: vec![AppId::Hpccg, AppId::Gtc],
            modes: vec![
                ExecutionMode::Native,
                ExecutionMode::Replicated { degree: 2 },
                ExecutionMode::IntraParallel { degree: 2 },
            ],
            schedulers: vec![SchedulerKind::StaticBlock],
            failures: vec![
                FailureSpec::None,
                FailureSpec::Poisson {
                    rate: FailureRate::Constant(SMOKE_FAILURE_RATE),
                    horizon_s: SMOKE_FAILURE_HORIZON_S,
                },
            ],
            ckpts: vec![None],
            seeds: vec![43],
        }
    }

    /// Failure-model sweep: HPCCG under intra-parallelized replication with
    /// homogeneous and inhomogeneous (ramp, burst) Poisson arrivals at
    /// increasing rates, the fitted Weibull/log-normal MTBF hazards, and
    /// correlated node/rack failure domains.
    pub fn failures() -> Self {
        let h = SMOKE_FAILURE_HORIZON_S;
        CampaignGrid {
            name: "failures".to_string(),
            scale: ExperimentScale::Tiny,
            apps: vec![AppId::Hpccg],
            modes: vec![ExecutionMode::IntraParallel { degree: 2 }],
            schedulers: vec![SchedulerKind::StaticBlock],
            failures: vec![
                FailureSpec::None,
                FailureSpec::Poisson {
                    rate: FailureRate::Constant(0.5),
                    horizon_s: h,
                },
                FailureSpec::Poisson {
                    rate: FailureRate::Constant(2.0),
                    horizon_s: h,
                },
                FailureSpec::Poisson {
                    rate: FailureRate::Constant(5.0),
                    horizon_s: h,
                },
                FailureSpec::Poisson {
                    rate: FailureRate::Ramp {
                        start: 0.0,
                        end: 4.0,
                    },
                    horizon_s: h,
                },
                FailureSpec::Poisson {
                    rate: FailureRate::Burst {
                        base: 0.0,
                        peak: 8.0,
                        center: 0.5,
                        width: 0.25,
                    },
                    horizon_s: h,
                },
                // The fitted MTBF hazards, with one MTBF per horizon so a
                // tiny run sees about one expected failure per rank.
                FailureSpec::Poisson {
                    rate: FailureRate::weibull_hpc(h),
                    horizon_s: h,
                },
                FailureSpec::Poisson {
                    rate: FailureRate::lognormal_hpc(h),
                    horizon_s: h,
                },
                // Correlated domains: one event kills a whole node / rack.
                FailureSpec::Correlated {
                    domain: FailureDomain::Node,
                    rate: FailureRate::Constant(1.0),
                    horizon_s: h,
                },
                FailureSpec::Correlated {
                    domain: FailureDomain::Rack { nodes_per_rack: 2 },
                    rate: FailureRate::weibull_hpc(h),
                    horizon_s: h,
                },
            ],
            ckpts: vec![None],
            seeds: vec![42, 43, 44],
        }
    }

    /// Scheduler comparison on every application, intra mode only.
    pub fn schedulers() -> Self {
        CampaignGrid {
            name: "schedulers".to_string(),
            scale: ExperimentScale::Tiny,
            apps: AppId::ALL.to_vec(),
            modes: vec![ExecutionMode::IntraParallel { degree: 2 }],
            schedulers: SchedulerKind::ALL.to_vec(),
            failures: vec![FailureSpec::None],
            ckpts: vec![None],
            seeds: vec![42],
        }
    }

    /// The broad grid: every application, all three modes, two schedulers,
    /// failure-free and failing, at the small scale.  Meant for manual /
    /// nightly use, not the per-push gate.
    pub fn full() -> Self {
        CampaignGrid {
            name: "full".to_string(),
            scale: ExperimentScale::Small,
            apps: AppId::ALL.to_vec(),
            modes: vec![
                ExecutionMode::Native,
                ExecutionMode::Replicated { degree: 2 },
                ExecutionMode::IntraParallel { degree: 2 },
            ],
            schedulers: vec![SchedulerKind::StaticBlock, SchedulerKind::Adaptive],
            failures: vec![
                FailureSpec::None,
                FailureSpec::Poisson {
                    rate: FailureRate::Constant(0.2),
                    horizon_s: 5.0,
                },
            ],
            ckpts: vec![None],
            seeds: vec![42],
        }
    }

    /// The replication-vs-C/R grid (the paper's Figure 5 axis): HPCCG
    /// native and replicated, failure-free plus both fitted MTBF hazards,
    /// swept against no checkpointing and the fixed / Young / Daly
    /// interval policies.  The failure-free x Young/Daly points resolve to
    /// an infinite interval (never checkpoint), so the pure cross product
    /// stays meaningful.
    pub fn ckpt() -> Self {
        let h = SMOKE_FAILURE_HORIZON_S;
        CampaignGrid {
            name: "ckpt".to_string(),
            scale: ExperimentScale::Tiny,
            apps: vec![AppId::Hpccg],
            modes: vec![
                ExecutionMode::Native,
                ExecutionMode::Replicated { degree: 2 },
            ],
            schedulers: vec![SchedulerKind::StaticBlock],
            failures: vec![
                FailureSpec::None,
                FailureSpec::Poisson {
                    rate: FailureRate::weibull_hpc(h),
                    horizon_s: h,
                },
                FailureSpec::Poisson {
                    rate: FailureRate::lognormal_hpc(h),
                    horizon_s: h,
                },
            ],
            ckpts: vec![
                None,
                Some(CheckpointPlan::fixed(0.05, 0.005, 0.01)),
                Some(CheckpointPlan::young(0.005, 0.01)),
                Some(CheckpointPlan::daly(0.005, 0.01)),
            ],
            seeds: vec![42],
        }
    }

    /// Looks up a built-in grid by name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Self::smoke()),
            "failures" => Some(Self::failures()),
            "schedulers" => Some(Self::schedulers()),
            "full" => Some(Self::full()),
            "ckpt" => Some(Self::ckpt()),
            _ => None,
        }
    }

    /// Names of the built-in grids.
    pub fn builtin_names() -> &'static [&'static str] {
        &["smoke", "failures", "schedulers", "full", "ckpt"]
    }
}

/// Failure rate of the smoke grid's Poisson axis (crashes per rank per
/// virtual second), calibrated so that a tiny run (virtual makespan
/// 0.2–0.9 s) sees roughly one crash across its ranks.
pub const SMOKE_FAILURE_RATE: f64 = 0.5;

/// Horizon of the smoke grid's failure traces, in virtual seconds (covers
/// the whole tiny-scale run).
pub const SMOKE_FAILURE_HORIZON_S: f64 = 1.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_the_full_cross_product_with_stable_indices() {
        let grid = CampaignGrid::smoke();
        let specs = grid.expand();
        let expected = grid.apps.len()
            * grid.modes.len()
            * grid.schedulers.len()
            * grid.failures.len()
            * grid.ckpts.len()
            * grid.seeds.len();
        assert_eq!(specs.len(), expected);
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(spec.index, i);
        }
        // Expansion is deterministic.
        assert_eq!(grid.expand(), specs);
        // Run ids are unique.
        let mut ids: Vec<String> = specs.iter().map(RunSpec::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), specs.len());
    }

    #[test]
    fn builtin_grids_resolve_by_name() {
        for name in CampaignGrid::builtin_names() {
            let grid = CampaignGrid::by_name(name).unwrap();
            assert_eq!(&grid.name, name);
            assert!(!grid.expand().is_empty());
        }
        assert!(CampaignGrid::by_name("nope").is_none());
    }

    #[test]
    fn every_builtin_grid_point_is_a_valid_experiment() {
        // The grids are typed, so the only way a spec could fail to convert
        // is an invalid axis combination; none of the built-ins has one.
        for name in CampaignGrid::builtin_names() {
            for spec in CampaignGrid::by_name(name).unwrap().expand() {
                let experiment = spec.experiment().unwrap_or_else(|e| {
                    panic!("{}: {e}", spec.id());
                });
                assert_eq!(RunSpec::from_experiment(spec.index, &experiment), spec);
            }
        }
    }
}
