//! Content-addressed run cache: re-sweeps execute only the delta.
//!
//! Every [`RunSpec`] has a deterministic **fingerprint**: an FNV-1a 64-bit
//! hash over
//!
//! 1. the canonical axis material of its facade twin
//!    ([`intra_replication::Experiment::fingerprint_material`], reached
//!    through the lossless `RunSpec` ↔ `Experiment` conversion),
//! 2. the report-schema version ([`v1::SCHEMA`]) — a cached row can never
//!    be replayed into a report of another schema, and
//! 3. the code-determinism epoch ([`DETERMINISM_EPOCH`]) — bumped whenever
//!    a code change alters simulation *output* for an unchanged spec, which
//!    is exactly the event that forces golden regeneration.
//!
//! Because every run is a pure function of its spec (determinism rule: the
//! same spec produces byte-identical results at any `--jobs`), the
//! fingerprint can content-address a completed [`RunResult`] on disk: a
//! warm sweep looks each spec up, replays hits verbatim — including the
//! originally measured `wall_time_ms`, so a warm report is byte-identical
//! to the cold one that populated the cache — and executes only misses.
//!
//! The store is a flat directory of self-describing JSON entries (one file
//! per fingerprint, written atomically via temp-file + rename, safe under
//! concurrent writers); no database, no new dependencies.

use crate::queue::ExecutorPool;
use crate::report::v1;
use crate::runner::{run_spec, RunResult};
use crate::spec::RunSpec;
use crate::Json;
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The code-determinism epoch.  Part of every fingerprint: bump it (with
/// the golden baselines) whenever a code change alters what an unchanged
/// spec simulates — cached results from the previous epoch then miss
/// instead of resurrecting pre-change numbers.
pub const DETERMINISM_EPOCH: u32 = 1;

/// Schema tag of on-disk cache entries.
const ENTRY_SCHEMA: &str = "ipr-cache-entry/1";

/// FNV-1a, 64-bit.  In-tree because the fingerprint must be stable across
/// builds and platforms (no `DefaultHasher`, whose algorithm is
/// unspecified).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The exact string a spec's fingerprint hashes (exposed for tests and for
/// the ARCHITECTURE.md definition): the facade's canonical axis material,
/// then the report schema, then the determinism epoch.
pub fn fingerprint_material(spec: &RunSpec) -> String {
    let experiment = spec
        .experiment()
        .expect("cacheable specs are valid experiments");
    format!(
        "{}|schema={}|epoch={}",
        experiment.fingerprint_material(),
        v1::SCHEMA,
        DETERMINISM_EPOCH
    )
}

/// Content-address of a run spec (see the module docs for what it covers).
pub fn fingerprint(spec: &RunSpec) -> u64 {
    fnv1a(fingerprint_material(spec).as_bytes())
}

/// An on-disk, content-addressed store of completed [`RunResult`]s.
pub struct RunCache {
    dir: PathBuf,
    writes: AtomicU64,
}

impl RunCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(RunCache {
            dir,
            writes: AtomicU64::new(0),
        })
    }

    /// The conventional in-repo cache location (`target/campaign-cache`).
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target/campaign-cache")
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, fp: u64) -> PathBuf {
        self.dir.join(format!("{fp:016x}.json"))
    }

    /// Looks up the cached result of `spec`, if present.  Any malformed,
    /// mis-tagged, or colliding entry reads as a miss (the run simply
    /// re-executes and overwrites it).
    pub fn get(&self, spec: &RunSpec) -> Option<RunResult> {
        let fp = fingerprint(spec);
        let text = std::fs::read_to_string(self.entry_path(fp)).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.get("schema").and_then(Json::as_str) != Some(ENTRY_SCHEMA) {
            return None;
        }
        if doc.get("fingerprint").and_then(Json::as_str) != Some(format!("{fp:016x}").as_str()) {
            return None;
        }
        let run = RunResult::from_json(doc.get("run")?).ok()?;
        // Fingerprint collision guard: the entry must describe this run.
        if run.id != spec.id() {
            return None;
        }
        Some(run)
    }

    /// Stores the result of `spec`.  Atomic (temp-file + rename) and safe
    /// under concurrent writers of the same entry: both write identical
    /// content, and the rename is a whole-file replacement.
    pub fn put(&self, spec: &RunSpec, result: &RunResult) -> std::io::Result<()> {
        let fp = fingerprint(spec);
        let entry = Json::obj(vec![
            ("schema", Json::Str(ENTRY_SCHEMA.to_string())),
            ("fingerprint", Json::Str(format!("{fp:016x}"))),
            ("material", Json::Str(fingerprint_material(spec))),
            ("run", result.to_json()),
        ]);
        let serial = self.writes.fetch_add(1, Ordering::SeqCst);
        let tmp = self
            .dir
            .join(format!(".tmp-{fp:016x}-{}-{serial}", std::process::id()));
        std::fs::write(&tmp, entry.render() + "\n")?;
        std::fs::rename(&tmp, self.entry_path(fp))
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.file_name().to_string_lossy().ends_with(".json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// True if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Outcome of a cache-aware batch: the results in spec order plus how many
/// came from the cache versus fresh execution.
pub struct CachedBatch {
    /// Results in spec order (grid order for an expanded grid).
    pub runs: Vec<RunResult>,
    /// Runs actually executed (cache misses).
    pub executed: usize,
    /// Runs replayed from the cache.
    pub hits: usize,
}

/// Executes `specs` through `cache` on an existing pool: hits replay
/// immediately, misses run concurrently and are stored for next time.
/// `on_complete(index, cached, result)` fires once per spec in completion
/// order (hits first, then misses as they finish) — the serve loop streams
/// its JSONL from this.
pub fn run_specs_cached_on<F>(
    pool: &ExecutorPool,
    specs: &[RunSpec],
    cache: &Arc<RunCache>,
    on_complete: F,
) -> CachedBatch
where
    F: Fn(usize, bool, &RunResult) + Send + Sync + 'static,
{
    let slots: Arc<Vec<Mutex<Option<RunResult>>>> =
        Arc::new(specs.iter().map(|_| Mutex::new(None)).collect());
    let on_complete = Arc::new(on_complete);
    let mut hits = 0;
    let mut misses = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        if let Some(result) = cache.get(spec) {
            on_complete(i, true, &result);
            *slots[i].lock() = Some(result);
            hits += 1;
        } else {
            misses.push((i, spec.clone()));
        }
    }
    let executed = misses.len();
    let done = Arc::new((Mutex::new(0usize), parking_lot::Condvar::new()));
    for (i, spec) in misses {
        let slots = Arc::clone(&slots);
        let cache = Arc::clone(cache);
        let on_complete = Arc::clone(&on_complete);
        let done = Arc::clone(&done);
        pool.submit(move || {
            let result = run_spec(&spec);
            cache.put(&spec, &result).expect("cache write");
            on_complete(i, false, &result);
            *slots[i].lock() = Some(result);
            let (count, cond) = &*done;
            *count.lock() += 1;
            cond.notify_all();
        });
    }
    let (count, cond) = &*done;
    let mut finished = count.lock();
    while *finished < executed {
        cond.wait(&mut finished);
    }
    drop(finished);
    let runs = slots
        .iter()
        .map(|slot| slot.lock().take().expect("every slot was filled"))
        .collect();
    CachedBatch {
        runs,
        executed,
        hits,
    }
}

/// Convenience wrapper: cache-aware batch on a transient pool of `jobs`
/// workers (what `campaign run --cache-dir` uses).
pub fn run_specs_cached(specs: &[RunSpec], jobs: usize, cache: &Arc<RunCache>) -> CachedBatch {
    if specs.is_empty() {
        return CachedBatch {
            runs: Vec::new(),
            executed: 0,
            hits: 0,
        };
    }
    let pool = ExecutorPool::new(jobs.max(1).min(specs.len()));
    let batch = run_specs_cached_on(&pool, specs, cache, |_, _, _| {});
    pool.shutdown();
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use apps::{AppId, ExperimentScale};
    use ipr_core::SchedulerKind;
    use replication::ExecutionMode;

    fn spec(seed: u64) -> RunSpec {
        RunSpec {
            index: 0,
            app: AppId::Hpccg,
            scale: ExperimentScale::Tiny,
            mode: ExecutionMode::IntraParallel { degree: 2 },
            scheduler: SchedulerKind::StaticBlock,
            failure: crate::FailureSpec::None,
            seed,
            ckpt: None,
        }
    }

    #[test]
    fn fingerprint_covers_schema_and_epoch() {
        let material = fingerprint_material(&spec(42));
        assert!(material.starts_with("ipr-experiment/1|"), "{material}");
        assert!(material.contains("|schema=ipr-report/1|"), "{material}");
        assert!(material.ends_with(&format!("|epoch={DETERMINISM_EPOCH}")));
        // Stable across calls, distinct across specs.
        assert_eq!(fingerprint(&spec(42)), fingerprint(&spec(42)));
        assert_ne!(fingerprint(&spec(42)), fingerprint(&spec(43)));
    }

    #[test]
    fn fnv_vector() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
