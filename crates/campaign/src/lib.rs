//! # campaign — declarative scenario-campaign engine
//!
//! The paper's evaluation is a grid of scenarios: proxy application × scale
//! × execution mode (native / replicated / intra-parallelized) × failure
//! behaviour.  This crate makes that grid *declarative* and *cheap to
//! sweep*:
//!
//! * [`grid::CampaignGrid`] — the cross product of six axes (app, scale,
//!   mode, scheduler, failure spec, seed) expands into independent
//!   [`spec::RunSpec`]s;
//! * [`runner`] — executes the runs **in parallel across OS threads**; each
//!   run is a self-contained virtual-time simulation, so wall-clock drops
//!   near-linearly with `--jobs` while the results stay byte-identical to a
//!   sequential execution;
//! * failure traces are first class: a run can draw per-rank crash times
//!   from homogeneous or inhomogeneous Poisson processes
//!   ([`replication::sample_failure_trace`]) instead of hand-placed crash
//!   points;
//! * [`report::CampaignReport`] — machine-readable JSON/CSV with per-run
//!   seeds for exact reproduction;
//! * [`diff`] — a tolerance-aware comparison that turns a checked-in golden
//!   JSON into a CI determinism/regression gate;
//! * [`weak`] — weak-scaling sweeps on `simmpi`'s event-driven engine
//!   (tens of thousands of logical ranks, far past the thread-per-rank
//!   ceiling), gated by their own golden baseline;
//! * [`report::v1`] — the versioned report model every rendering above
//!   serializes through: a schema-tagged envelope (`ipr-report/1`) with
//!   per-field semantics (discrete / metric / informational) declared once;
//! * [`cache`] — a content-addressed run cache (fingerprint = experiment
//!   axes + report schema + determinism epoch) so re-sweeps execute only
//!   the delta;
//! * [`queue`] + [`mod@serve`] — a long-running, work-stealing sweep service
//!   with a file-queue submit/status/results protocol and streaming JSONL
//!   output.
//!
//! The `campaign` binary exposes `run` / `list` / `diff` plus the service
//! verbs `serve` / `submit` / `status` / `results` / `stop` on the command
//! line; `make campaign-smoke` and `make serve-smoke` reproduce the CI
//! gates locally.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod diff;
pub mod grid;
pub mod json;
pub mod queue;
pub mod report;
pub mod runner;
pub mod serve;
pub mod spec;
pub mod weak;

pub use cache::{fingerprint, run_specs_cached, CachedBatch, RunCache, DETERMINISM_EPOCH};
pub use diff::{diff_documents, diff_reports, strip_informational, INFORMATIONAL_KEYS};
pub use grid::CampaignGrid;
pub use json::Json;
pub use queue::ExecutorPool;
pub use report::{v1, CampaignReport};
pub use runner::{run_campaign, run_spec, run_specs, run_specs_on, RunResult};
pub use serve::{serve, JobSummary, ServeOptions, Spool, SpoolStatus};
pub use spec::{FailureSpec, RunSpec};
pub use weak::{run_weak_spec, run_weak_sweep, WeakReport, WeakRow, WeakRunSpec, WeakSweep};
