//! Campaign execution: one deterministic virtual-time simulation per
//! [`RunSpec`], fanned out over OS threads.
//!
//! Every run is self-contained — its own simulated cluster, its own seed,
//! its own failure traces — so runs can execute concurrently without
//! affecting each other's results: the report produced with `--jobs 8` is
//! byte-identical to the one produced with `--jobs 1` (results are placed
//! by grid index, never by completion order).

use crate::grid::CampaignGrid;
use crate::spec::{mode_label, RunSpec};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Aggregated result of one campaign run (all fields are deterministic
/// functions of the [`RunSpec`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Run id ([`RunSpec::id`]).
    pub id: String,
    /// Application name.
    pub app: String,
    /// Scale preset name.
    pub scale: String,
    /// Mode label (with degree).
    pub mode: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Failure-spec label.
    pub failure: String,
    /// Run seed.
    pub seed: u64,
    /// Physical processes simulated.
    pub procs: usize,
    /// Ranks that completed the application.
    pub completed: usize,
    /// Ranks that crashed through failure injection.
    pub crashed: usize,
    /// Ranks that failed for any other reason (e.g. peers of a crashed
    /// native rank observing `ProcessFailed`).
    pub errored: usize,
    /// Crash-stop failure events recorded by the cluster.
    pub failure_events: usize,
    /// Timed crashes the failure plan scheduled before the run started
    /// (`Experiment::scheduled_crashes().len()`): a pure function of the
    /// spec, so diffed exactly like every other deterministic column.  Not
    /// every scheduled crash fires — a rank that finishes before its crash
    /// time survives — which is why this is reported next to
    /// `failure_events`.
    pub scheduled_crashes: usize,
    /// Virtual makespan over the surviving ranks, in seconds.
    pub makespan_s: f64,
    /// Mean virtual time inside intra-parallel sections over completed
    /// ranks, in seconds.
    pub section_s: f64,
    /// Mean virtual update-drain time over completed ranks, in seconds.
    pub update_drain_s: f64,
    /// Total tasks executed locally (summed over completed ranks).
    pub tasks_executed: usize,
    /// Total task results received from peer replicas.
    pub tasks_received: usize,
    /// Total tasks re-executed because their owner crashed.
    pub tasks_reexecuted: usize,
    /// Total modeled update bytes sent between replicas.
    pub update_bytes_sent: usize,
    /// Application verification value (max over completed ranks; 0 when no
    /// rank completed).
    pub verification: f64,
    /// Host wall-clock time this run took to simulate, in milliseconds.
    /// *Informational only*: the single non-deterministic field of a run
    /// result, excluded from the tolerance diff (see `crate::diff`) and
    /// present so campaign reports double as a host-performance trace.
    pub wall_time_ms: f64,
}

/// Executes one run specification to completion by handing it to the
/// facade's [`intra_replication::Experiment`] engine and folding the
/// [`intra_replication::RunReport`] into the campaign's flat row.
pub fn run_spec(spec: &RunSpec) -> RunResult {
    let experiment = spec
        .experiment()
        .expect("expanded grid points are valid experiments");
    let scheduled_crashes = experiment.scheduled_crashes().len();
    let report = experiment.run().expect("experiment execution");
    RunResult {
        id: spec.id(),
        app: spec.app.name().to_string(),
        scale: spec.scale.name().to_string(),
        mode: mode_label(spec.mode),
        scheduler: spec.scheduler.to_string(),
        failure: spec.failure.label(),
        seed: spec.seed,
        procs: report.procs,
        completed: report.completed(),
        crashed: report.crashed(),
        errored: report.errored(),
        failure_events: report.failure_events,
        scheduled_crashes,
        makespan_s: report.makespan_s,
        section_s: report.mean_section_s(),
        update_drain_s: report.mean_update_drain_s(),
        tasks_executed: report.tasks_executed(),
        tasks_received: report.tasks_received(),
        tasks_reexecuted: report.tasks_reexecuted(),
        update_bytes_sent: report.update_bytes_sent(),
        verification: report.verification(),
        wall_time_ms: report.wall_time_ms,
    }
}

/// Executes `specs` on up to `jobs` worker threads and returns the results
/// in grid order (independent of completion order).
pub fn run_specs(specs: &[RunSpec], jobs: usize) -> Vec<RunResult> {
    let workers = jobs.max(1).min(specs.len().max(1));
    let slots: Vec<Mutex<Option<RunResult>>> = specs.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::SeqCst);
                if i >= specs.len() {
                    break;
                }
                let result = run_spec(&specs[i]);
                *slots[i].lock() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot was executed"))
        .collect()
}

/// Expands and executes a whole grid, producing the campaign report.
pub fn run_campaign(grid: &CampaignGrid, jobs: usize) -> crate::report::CampaignReport {
    let specs = grid.expand();
    let runs = run_specs(&specs, jobs);
    crate::report::CampaignReport {
        campaign: grid.name.clone(),
        scale: grid.scale.name().to_string(),
        runs,
    }
}
