//! Campaign execution: one deterministic virtual-time simulation per
//! [`RunSpec`], fanned out over the work-stealing executor pool.
//!
//! Every run is self-contained — its own simulated cluster, its own seed,
//! its own failure traces — so runs can execute concurrently without
//! affecting each other's results: the report produced with `--jobs 8` is
//! byte-identical to the one produced with `--jobs 1` (results are placed
//! by grid index, never by completion order).

use crate::grid::CampaignGrid;
use crate::queue::ExecutorPool;
use crate::spec::RunSpec;
use parking_lot::Mutex;
use std::sync::Arc;

/// Aggregated result of one campaign run — the campaign-historical name of
/// the versioned report model's row type ([`crate::report::v1::RunRecord`]).
pub use crate::report::v1::RunRecord as RunResult;

/// Executes one run specification to completion by handing it to the
/// facade's [`intra_replication::Experiment`] engine and folding the
/// [`intra_replication::RunReport`] into the v1 row.
pub fn run_spec(spec: &RunSpec) -> RunResult {
    let experiment = spec
        .experiment()
        .expect("expanded grid points are valid experiments");
    let scheduled_crashes = experiment.scheduled_crashes().len();
    let report = experiment.run().expect("experiment execution");
    RunResult::from_run(spec, scheduled_crashes, &report)
}

/// Executes `specs` on a transient pool of up to `jobs` workers and returns
/// the results in grid order (independent of completion order).
pub fn run_specs(specs: &[RunSpec], jobs: usize) -> Vec<RunResult> {
    if specs.is_empty() {
        return Vec::new();
    }
    let pool = ExecutorPool::new(jobs.max(1).min(specs.len()));
    let results = run_specs_on(&pool, specs);
    pool.shutdown();
    results
}

/// Executes `specs` on an existing pool (the long-running serve pool, or a
/// transient one), returning results in spec order.  Blocks until every
/// one of *these* specs finished; other traffic on the pool proceeds
/// concurrently and is not waited for.
pub fn run_specs_on(pool: &ExecutorPool, specs: &[RunSpec]) -> Vec<RunResult> {
    let slots: Arc<Vec<Mutex<Option<RunResult>>>> =
        Arc::new(specs.iter().map(|_| Mutex::new(None)).collect());
    let done = Arc::new((Mutex::new(0usize), parking_lot::Condvar::new()));
    for (i, spec) in specs.iter().cloned().enumerate() {
        let slots = Arc::clone(&slots);
        let done = Arc::clone(&done);
        pool.submit(move || {
            let result = run_spec(&spec);
            *slots[i].lock() = Some(result);
            let (count, cond) = &*done;
            *count.lock() += 1;
            cond.notify_all();
        });
    }
    let (count, cond) = &*done;
    let mut finished = count.lock();
    while *finished < specs.len() {
        cond.wait(&mut finished);
    }
    drop(finished);
    slots
        .iter()
        .map(|slot| slot.lock().take().expect("every slot was executed"))
        .collect()
}

/// Expands and executes a whole grid, producing the campaign report.
pub fn run_campaign(grid: &CampaignGrid, jobs: usize) -> crate::report::CampaignReport {
    let specs = grid.expand();
    let runs = run_specs(&specs, jobs);
    crate::report::CampaignReport {
        campaign: grid.name.clone(),
        scale: grid.scale.name().to_string(),
        runs,
    }
}
