//! Campaign execution: one deterministic virtual-time simulation per
//! [`RunSpec`], fanned out over OS threads.
//!
//! Every run is self-contained — its own simulated cluster, its own seed,
//! its own failure traces — so runs can execute concurrently without
//! affecting each other's results: the report produced with `--jobs 8` is
//! byte-identical to the one produced with `--jobs 1` (results are placed
//! by grid index, never by completion order).

use crate::grid::CampaignGrid;
use crate::spec::{mode_label, FailureSpec, RunSpec};
use apps::{run_app, AppContext, AppWorkload};
use ipr_core::{IntraConfig, IntraError};
use parking_lot::Mutex;
use replication::{sample_failure_trace, FailureInjector};
use simcluster::{MachineModel, SimTime, Topology};
use simmpi::{run_cluster, ClusterConfig};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Aggregated result of one campaign run (all fields are deterministic
/// functions of the [`RunSpec`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Run id ([`RunSpec::id`]).
    pub id: String,
    /// Application name.
    pub app: String,
    /// Scale preset name.
    pub scale: String,
    /// Mode label (with degree).
    pub mode: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Failure-spec label.
    pub failure: String,
    /// Run seed.
    pub seed: u64,
    /// Physical processes simulated.
    pub procs: usize,
    /// Ranks that completed the application.
    pub completed: usize,
    /// Ranks that crashed through failure injection.
    pub crashed: usize,
    /// Ranks that failed for any other reason (e.g. peers of a crashed
    /// native rank observing `ProcessFailed`).
    pub errored: usize,
    /// Crash-stop failure events recorded by the cluster.
    pub failure_events: usize,
    /// Virtual makespan over the surviving ranks, in seconds.
    pub makespan_s: f64,
    /// Mean virtual time inside intra-parallel sections over completed
    /// ranks, in seconds.
    pub section_s: f64,
    /// Mean virtual update-drain time over completed ranks, in seconds.
    pub update_drain_s: f64,
    /// Total tasks executed locally (summed over completed ranks).
    pub tasks_executed: usize,
    /// Total task results received from peer replicas.
    pub tasks_received: usize,
    /// Total tasks re-executed because their owner crashed.
    pub tasks_reexecuted: usize,
    /// Total modeled update bytes sent between replicas.
    pub update_bytes_sent: usize,
    /// Application verification value (max over completed ranks; 0 when no
    /// rank completed).
    pub verification: f64,
    /// Host wall-clock time this run took to simulate, in milliseconds.
    /// *Informational only*: the single non-deterministic field of a run
    /// result, excluded from the tolerance diff (see `crate::diff`) and
    /// present so campaign reports double as a host-performance trace.
    pub wall_time_ms: f64,
}

/// Executes one run specification to completion.
pub fn run_spec(spec: &RunSpec) -> RunResult {
    let started = std::time::Instant::now();
    let degree = spec.mode.degree();
    let num_logical = spec.scale.fig6_logical_procs();
    let procs = num_logical * degree;
    let machine = MachineModel::grid5000_ib20g();
    let topology = if degree > 1 {
        Topology::replica_disjoint(num_logical, degree, machine.cores_per_node)
    } else {
        Topology::block(procs, machine.cores_per_node)
    };
    let config = ClusterConfig::new(procs)
        .with_machine(machine)
        .with_topology(topology)
        .with_seed(spec.seed);

    let workload = AppWorkload {
        grid_edge: spec.scale.actual_grid_edge(),
        particles: spec.scale.actual_particles(),
        iterations: spec.scale.app_iterations(),
    };
    let (app, mode, scheduler, failure, seed) =
        (spec.app, spec.mode, spec.scheduler, spec.failure, spec.seed);

    let report = run_cluster(&config, move |proc| {
        let injector = FailureInjector::none();
        if let FailureSpec::Poisson { rate, horizon_s } = failure {
            let trace =
                sample_failure_trace(rate, SimTime::from_secs(horizon_s), seed, proc.rank());
            injector.arm_trace(proc.rank(), &trace);
        }
        let intra = apps::driver::with_scheduler(IntraConfig::paper(), Some(scheduler))
            .expect("grid schedulers are validated against the registry");
        let mut ctx = AppContext::new(proc, mode, intra, injector)?;
        run_app(&mut ctx, app, &workload)
    });

    let mut completed = 0usize;
    let mut crashed = 0usize;
    let mut errored = 0usize;
    let mut section_s_sum = 0.0f64;
    let mut drain_s_sum = 0.0f64;
    let mut tasks_executed = 0usize;
    let mut tasks_received = 0usize;
    let mut tasks_reexecuted = 0usize;
    let mut update_bytes_sent = 0usize;
    let mut verification = 0.0f64;
    for result in &report.results {
        match result {
            Ok(Ok(r)) => {
                completed += 1;
                section_s_sum += r.section_time.as_secs();
                drain_s_sum += r.update_drain_time.as_secs();
                tasks_executed += r.tasks_executed;
                tasks_received += r.tasks_received;
                tasks_reexecuted += r.tasks_reexecuted;
                update_bytes_sent += r.update_bytes_sent;
                verification = verification.max(r.verification.abs());
            }
            Ok(Err(IntraError::Crashed)) => crashed += 1,
            Ok(Err(_)) | Err(_) => errored += 1,
        }
    }
    let denom = completed.max(1) as f64;
    RunResult {
        id: spec.id(),
        app: spec.app.name().to_string(),
        scale: spec.scale.name().to_string(),
        mode: mode_label(spec.mode),
        scheduler: spec.scheduler.to_string(),
        failure: spec.failure.label(),
        seed: spec.seed,
        procs,
        completed,
        crashed,
        errored,
        failure_events: report.failures.len(),
        makespan_s: report.makespan().as_secs(),
        section_s: section_s_sum / denom,
        update_drain_s: drain_s_sum / denom,
        tasks_executed,
        tasks_received,
        tasks_reexecuted,
        update_bytes_sent,
        verification,
        // Rounded to whole microseconds so the rendering stays compact.
        wall_time_ms: (started.elapsed().as_secs_f64() * 1e6).round() / 1e3,
    }
}

/// Executes `specs` on up to `jobs` worker threads and returns the results
/// in grid order (independent of completion order).
pub fn run_specs(specs: &[RunSpec], jobs: usize) -> Vec<RunResult> {
    let workers = jobs.max(1).min(specs.len().max(1));
    let slots: Vec<Mutex<Option<RunResult>>> = specs.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::SeqCst);
                if i >= specs.len() {
                    break;
                }
                let result = run_spec(&specs[i]);
                *slots[i].lock() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot was executed"))
        .collect()
}

/// Expands and executes a whole grid, producing the campaign report.
pub fn run_campaign(grid: &CampaignGrid, jobs: usize) -> crate::report::CampaignReport {
    let specs = grid.expand();
    let runs = run_specs(&specs, jobs);
    crate::report::CampaignReport {
        campaign: grid.name.clone(),
        scale: grid.scale.name().to_string(),
        runs,
    }
}
