//! # ckpt — coordinated checkpoint/restart in virtual time
//!
//! The reproduced paper's whole argument for intra-parallelized replication
//! is a comparison against coordinated checkpoint/restart (C/R) at exascale
//! failure rates.  This crate models the C/R side of that trade-off:
//!
//! * [`CheckpointPlan`] — the policy axis: a fixed checkpoint interval, or
//!   the Young / Daly optimal-interval formulas parameterized by a modeled
//!   checkpoint cost `C`, restart cost `R`, and the system MTBF derived
//!   from the fitted hazards of [`replication::FailureRate`];
//! * [`system_mtbf`] — turns a failure-rate function plus a stream count
//!   (ranks for per-rank Poisson plans, failure groups for correlated
//!   plans) into the system-level MTBF the interval formulas consume;
//! * [`CkptSession`] — the deterministic rollback-recovery replay: at every
//!   coordinated protocol point it converts the precomputed crash schedule
//!   into restart + re-execution time charged identically on every rank's
//!   virtual clock, and accounts the wasted work ([`CkptStats`]).
//!
//! Everything is a pure function of the experiment axes: no randomness, no
//! wall clocks, no shared state — which is what keeps campaign reports
//! byte-identical at any `--jobs` count.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod plan;
mod session;

pub use plan::{system_mtbf, CheckpointPlan, IntervalPolicy};
pub use session::{CkptSession, CkptStats};
