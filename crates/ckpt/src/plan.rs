//! Checkpoint interval policies: fixed, Young and Daly.

use replication::FailureRate;
use std::fmt;

/// How the checkpoint interval is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntervalPolicy {
    /// Checkpoint every `interval_s` virtual seconds of useful work,
    /// regardless of the failure rate (the pure-overhead control axis).
    Fixed {
        /// Interval between checkpoints, in virtual seconds of useful work.
        interval_s: f64,
    },
    /// Young's first-order optimum: `tau = sqrt(2 C M)` for checkpoint cost
    /// `C` and system MTBF `M` (J. W. Young, CACM 1974).
    Young,
    /// Daly's higher-order refinement of Young's formula (J. T. Daly,
    /// FGCS 2006): for `C < 2M`,
    /// `tau = sqrt(2 C M) [1 + (1/3) sqrt(C / 2M) + (1/9)(C / 2M)] - C`,
    /// and `tau = M` otherwise.
    Daly,
}

/// The checkpoint/restart axis of an experiment: an interval policy plus
/// the modeled cost of writing one coordinated checkpoint (`C`) and of one
/// restart (`R`), both in virtual seconds.
///
/// A plan is deliberately independent of the failure plan it is paired
/// with: the same plan swept against several MTBF hazards is exactly the
/// replication-vs-C/R crossover campaign of the paper's Figure 5.  The MTBF
/// enters through [`CheckpointPlan::interval_for`] at session-construction
/// time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointPlan {
    /// Interval policy.
    pub policy: IntervalPolicy,
    /// Virtual seconds one coordinated checkpoint costs every rank.
    pub ckpt_cost_s: f64,
    /// Virtual seconds one rollback-restart costs every rank.
    pub restart_cost_s: f64,
}

impl CheckpointPlan {
    /// A fixed-interval plan.
    pub fn fixed(interval_s: f64, ckpt_cost_s: f64, restart_cost_s: f64) -> Self {
        CheckpointPlan {
            policy: IntervalPolicy::Fixed { interval_s },
            ckpt_cost_s,
            restart_cost_s,
        }
    }

    /// A Young-interval plan.
    pub fn young(ckpt_cost_s: f64, restart_cost_s: f64) -> Self {
        CheckpointPlan {
            policy: IntervalPolicy::Young,
            ckpt_cost_s,
            restart_cost_s,
        }
    }

    /// A Daly-interval plan.
    pub fn daly(ckpt_cost_s: f64, restart_cost_s: f64) -> Self {
        CheckpointPlan {
            policy: IntervalPolicy::Daly,
            ckpt_cost_s,
            restart_cost_s,
        }
    }

    /// The checkpoint interval this plan resolves to under system MTBF
    /// `mtbf_s`, in virtual seconds.  An infinite MTBF (no failure plan)
    /// resolves Young/Daly to `f64::INFINITY` — never checkpoint — which is
    /// what makes a pure cross-product campaign grid valid: the
    /// failure-free × Young grid point degenerates to the native baseline.
    pub fn interval_for(&self, mtbf_s: f64) -> f64 {
        let c = self.ckpt_cost_s;
        match self.policy {
            IntervalPolicy::Fixed { interval_s } => interval_s,
            IntervalPolicy::Young => {
                if !mtbf_s.is_finite() {
                    f64::INFINITY
                } else {
                    (2.0 * c * mtbf_s).sqrt()
                }
            }
            IntervalPolicy::Daly => {
                if !mtbf_s.is_finite() {
                    f64::INFINITY
                } else if c < 2.0 * mtbf_s {
                    let x = c / (2.0 * mtbf_s);
                    (2.0 * c * mtbf_s).sqrt() * (1.0 + x.sqrt() / 3.0 + x / 9.0) - c
                } else {
                    mtbf_s
                }
            }
        }
    }

    /// Compact label used in run ids and reports, e.g. `fixed-0.05-c0.01-r0.02`
    /// or `daly-c0.01-r0.02`.
    pub fn label(&self) -> String {
        let c = self.ckpt_cost_s;
        let r = self.restart_cost_s;
        match self.policy {
            IntervalPolicy::Fixed { interval_s } => format!("fixed-{interval_s}-c{c}-r{r}"),
            IntervalPolicy::Young => format!("young-c{c}-r{r}"),
            IntervalPolicy::Daly => format!("daly-c{c}-r{r}"),
        }
    }

    /// Parses the output of [`CheckpointPlan::label`].
    pub fn parse(s: &str) -> Option<Self> {
        let (head, tail) = s.split_once("-c")?;
        let (c_part, r_part) = tail.split_once("-r")?;
        let ckpt_cost_s = c_part.parse::<f64>().ok()?;
        let restart_cost_s = r_part.parse::<f64>().ok()?;
        let policy = match head {
            "young" => IntervalPolicy::Young,
            "daly" => IntervalPolicy::Daly,
            _ => {
                let interval = head.strip_prefix("fixed-")?;
                IntervalPolicy::Fixed {
                    interval_s: interval.parse::<f64>().ok()?,
                }
            }
        };
        Some(CheckpointPlan {
            policy,
            ckpt_cost_s,
            restart_cost_s,
        })
    }

    /// True if the declared parameters are in domain: costs finite and
    /// strictly positive, and a fixed interval finite and strictly
    /// positive.  (A zero-cost checkpoint would make every interval optimal
    /// and a zero interval would checkpoint in a tight loop.)
    pub fn is_valid(&self) -> bool {
        let pos = |v: f64| v.is_finite() && v > 0.0;
        let policy_ok = match self.policy {
            IntervalPolicy::Fixed { interval_s } => pos(interval_s),
            IntervalPolicy::Young | IntervalPolicy::Daly => true,
        };
        policy_ok && pos(self.ckpt_cost_s) && pos(self.restart_cost_s)
    }
}

impl fmt::Display for CheckpointPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// System MTBF under `streams` independent failure streams each driven by
/// `rate` over a horizon of `horizon_s` virtual seconds, in virtual
/// seconds.
///
/// The per-stream event rate is fitted from the expected event count of the
/// intensity function (`FailureRate::mean_events(horizon) / horizon`) — the
/// same first moment the Lewis–Shedler sampler realizes — and the system
/// rate is the sum over streams.  For a per-rank Poisson plan `streams` is
/// the physical rank count; for a correlated plan it is the number of
/// failure groups.  A zero system rate (no failure plan, or a rate that
/// never fires) yields `f64::INFINITY`.
pub fn system_mtbf(rate: FailureRate, horizon_s: f64, streams: usize) -> f64 {
    if horizon_s <= 0.0 || streams == 0 {
        return f64::INFINITY;
    }
    let per_stream = rate.mean_events(horizon_s) / horizon_s;
    let system_rate = per_stream * streams as f64;
    if system_rate > 0.0 && system_rate.is_finite() {
        1.0 / system_rate
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        let plans = [
            CheckpointPlan::fixed(0.05, 0.01, 0.02),
            CheckpointPlan::young(0.01, 0.02),
            CheckpointPlan::daly(0.0125, 0.025),
            CheckpointPlan::fixed(2.0, 0.5, 1.0),
        ];
        for plan in plans {
            assert_eq!(
                CheckpointPlan::parse(&plan.label()),
                Some(plan),
                "label {:?} must round-trip",
                plan.label()
            );
            assert_eq!(plan.to_string(), plan.label());
        }
        assert_eq!(
            CheckpointPlan::fixed(0.05, 0.01, 0.02).label(),
            "fixed-0.05-c0.01-r0.02"
        );
        assert!(CheckpointPlan::parse("young-c0.01").is_none());
        assert!(CheckpointPlan::parse("fixed-c0.01-r0.02").is_none());
        assert!(CheckpointPlan::parse("bogus").is_none());
    }

    #[test]
    fn young_interval_matches_the_closed_form() {
        let plan = CheckpointPlan::young(0.01, 0.02);
        let m = 10.0f64;
        assert!((plan.interval_for(m) - (2.0 * 0.01 * m).sqrt()).abs() < 1e-12);
        assert_eq!(plan.interval_for(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn daly_interval_refines_young_and_caps_at_mtbf() {
        let plan = CheckpointPlan::daly(0.01, 0.02);
        let m = 10.0f64;
        let young = (2.0 * 0.01 * m).sqrt();
        let daly = plan.interval_for(m);
        // For C << M, Daly sits close to (and slightly below) Young after
        // the -C correction, and both are finite and positive.
        assert!(daly > 0.0 && daly.is_finite());
        assert!((daly - young).abs() < young * 0.1);
        // Failure-dominated regime: C >= 2M caps the interval at M.
        let hot = CheckpointPlan::daly(5.0, 1.0);
        assert_eq!(hot.interval_for(2.0), 2.0);
        assert_eq!(plan.interval_for(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn system_mtbf_sums_streams_and_degenerates_to_infinity() {
        // 4 streams at 0.5 events/s each -> system rate 2/s -> MTBF 0.5 s.
        let m = system_mtbf(FailureRate::Constant(0.5), 1.0, 4);
        assert!((m - 0.5).abs() < 1e-12);
        // The fitted Weibull hazard is consistent with its own first moment:
        // MTBF = horizon / mean_events (close to, but not exactly, the
        // calibration MTBF because the hazard clamps its t -> 0 divergence).
        let expected = 1.0 / FailureRate::weibull_hpc(1.0).mean_events(1.0);
        let m = system_mtbf(FailureRate::weibull_hpc(1.0), 1.0, 1);
        assert!((m - expected).abs() < 1e-12);
        assert!((m - 1.0).abs() < 0.01, "clamp correction is small: {m}");
        assert_eq!(
            system_mtbf(FailureRate::Constant(0.0), 1.0, 8),
            f64::INFINITY
        );
        assert_eq!(
            system_mtbf(FailureRate::Constant(1.0), 1.0, 0),
            f64::INFINITY
        );
        assert_eq!(
            system_mtbf(FailureRate::Constant(1.0), 0.0, 4),
            f64::INFINITY
        );
    }

    #[test]
    fn validity_rejects_out_of_domain_parameters() {
        assert!(CheckpointPlan::fixed(0.05, 0.01, 0.02).is_valid());
        assert!(CheckpointPlan::young(0.01, 0.02).is_valid());
        assert!(!CheckpointPlan::fixed(0.0, 0.01, 0.02).is_valid());
        assert!(!CheckpointPlan::fixed(f64::INFINITY, 0.01, 0.02).is_valid());
        assert!(!CheckpointPlan::young(0.0, 0.02).is_valid());
        assert!(!CheckpointPlan::young(0.01, -1.0).is_valid());
        assert!(!CheckpointPlan::daly(f64::NAN, 0.02).is_valid());
    }
}
