//! Deterministic rollback-recovery replay over a precomputed crash schedule.

use crate::plan::CheckpointPlan;

/// Wasted-work and overhead accounting of one checkpointed run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CkptStats {
    /// Coordinated checkpoints committed.
    pub checkpoints: usize,
    /// Rollback-recoveries performed (one per defeating failure event).
    pub recoveries: usize,
    /// Virtual seconds lost to rollbacks: restart cost plus re-executed
    /// work, summed over recoveries.
    pub time_lost_s: f64,
    /// Virtual seconds spent writing checkpoints.
    pub ckpt_overhead_s: f64,
}

impl CkptStats {
    /// The efficiency of the run: useful time over total resource time,
    /// `(makespan - time_lost - ckpt_overhead) / (makespan * degree)`.
    /// `degree` is the replication degree (resources per logical rank);
    /// a failure-free, checkpoint-free native run scores 1.0.
    pub fn efficiency(&self, makespan_s: f64, degree: usize) -> f64 {
        if makespan_s <= 0.0 {
            return 0.0;
        }
        let useful = (makespan_s - self.time_lost_s - self.ckpt_overhead_s).max(0.0);
        useful / (makespan_s * degree.max(1) as f64)
    }
}

/// The coordinated-C/R replay for one run: consumes the precomputed crash
/// schedule and converts crashes into restart + re-execution time at the
/// run's coordinated protocol points.
///
/// Every rank of a run constructs its own session from the same inputs
/// (the plan, the system MTBF, the sorted crash schedule and the replica
/// mapping) and advances it with the same allreduce-synchronized
/// timestamps, so all sessions stay in lock-step: the extra virtual time
/// [`CkptSession::advance`] returns is identical on every rank, which is
/// what keeps the simulation deterministic and every rank's clock
/// consistently charged.
///
/// The model (documented simplifications included):
///
/// * checkpoints commit atomically at protocol points once the work since
///   the last checkpoint reaches the policy interval — the checkpoint
///   frequency is capped at the protocol-point frequency;
/// * a crash during a segment is observed at the next protocol point; the
///   run then pays the restart cost and re-executes the work since the
///   last committed checkpoint;
/// * under replication, a crash only defeats a logical rank when *all* of
///   its replicas have been lost since the last recovery; a recovery
///   restores every replica (native degree-1 runs are defeated by every
///   event);
/// * crash events sharing a timestamp (a correlated node/rack event) are
///   one failure event and cause at most one recovery.
#[derive(Debug, Clone)]
pub struct CkptSession {
    interval_s: f64,
    ckpt_cost_s: f64,
    restart_cost_s: f64,
    /// Crash schedule, sorted by (time, rank).
    events: Vec<(f64, usize)>,
    cursor: usize,
    num_logical: usize,
    degree: usize,
    dead: Vec<bool>,
    /// Modeled absolute time after the previous advance.
    last_s: f64,
    work_since_ckpt_s: f64,
    stats: CkptStats,
}

impl CkptSession {
    /// Builds the session for one run.  `crashes` is the experiment's
    /// precomputed `(physical rank, crash time in seconds)` schedule (any
    /// order); `mtbf_s` the system MTBF the interval policy resolves
    /// against; `num_logical`/`degree` the replica mapping (physical rank
    /// `p` hosts replica `p / num_logical` of logical rank
    /// `p % num_logical`).
    pub fn new(
        plan: &CheckpointPlan,
        mtbf_s: f64,
        crashes: &[(usize, f64)],
        num_logical: usize,
        degree: usize,
    ) -> Self {
        let num_physical = num_logical.max(1) * degree.max(1);
        let mut events: Vec<(f64, usize)> = crashes
            .iter()
            .filter(|&&(rank, _)| rank < num_physical)
            .map(|&(rank, at)| (at, rank))
            .collect();
        events.sort_by(|a, b| a.partial_cmp(b).expect("crash times are finite"));
        CkptSession {
            interval_s: plan.interval_for(mtbf_s),
            ckpt_cost_s: plan.ckpt_cost_s,
            restart_cost_s: plan.restart_cost_s,
            events,
            cursor: 0,
            num_logical: num_logical.max(1),
            degree: degree.max(1),
            dead: vec![false; num_physical],
            last_s: 0.0,
            work_since_ckpt_s: 0.0,
            stats: CkptStats::default(),
        }
    }

    /// The resolved checkpoint interval, in virtual seconds
    /// (`f64::INFINITY` = never checkpoint).
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// Advances the session to the coordinated protocol point at
    /// allreduce-synchronized virtual time `synced_now_s` and returns the
    /// extra virtual seconds (restarts, re-executed work, a committed
    /// checkpoint) every rank must charge.  Identical on every rank of the
    /// run by construction.
    pub fn advance(&mut self, synced_now_s: f64) -> f64 {
        self.advance_inner(synced_now_s, true)
    }

    /// Final advance at the end of the run: replays any crash events the
    /// last segment overlaps but commits no trailing checkpoint (there is
    /// no work left to protect).  Returns the extra virtual seconds to
    /// charge, like [`CkptSession::advance`].
    pub fn finish(&mut self, synced_now_s: f64) -> f64 {
        self.advance_inner(synced_now_s, false)
    }

    /// The accounting so far.
    pub fn stats(&self) -> CkptStats {
        self.stats
    }

    fn advance_inner(&mut self, synced_now_s: f64, commit_checkpoint: bool) -> f64 {
        // Work this segment contributed, on the synchronized timeline.
        let segment = (synced_now_s - self.last_s).max(0.0);
        let mut clock = self.last_s;
        let mut remaining = segment;
        // Replay every crash event the segment (plus any re-executed work)
        // overlaps.  The cursor strictly advances per event group, so the
        // loop terminates even though recoveries extend `remaining`.
        while let Some(&(t_ev, _)) = self.events.get(self.cursor) {
            if t_ev > clock + remaining {
                break;
            }
            let done = (t_ev - clock).max(0.0);
            clock += done;
            remaining -= done;
            self.work_since_ckpt_s += done;
            // Consume the whole same-timestamp group: a correlated event
            // killing several ranks at once is one failure event.
            let mut defeated = false;
            while let Some(&(t, rank)) = self.events.get(self.cursor) {
                if t != t_ev {
                    break;
                }
                self.cursor += 1;
                self.dead[rank] = true;
                let logical = rank % self.num_logical;
                if (0..self.degree).all(|r| self.dead[r * self.num_logical + logical]) {
                    defeated = true;
                }
            }
            if defeated {
                // Rollback: pay the restart and re-execute everything since
                // the last committed checkpoint.  The redo work re-enters
                // the replay window, so a crash during re-execution is
                // handled by the next loop iteration.
                let lost = self.work_since_ckpt_s;
                clock += self.restart_cost_s;
                remaining += lost;
                self.work_since_ckpt_s = 0.0;
                self.stats.recoveries += 1;
                self.stats.time_lost_s += self.restart_cost_s + lost;
                self.dead.iter_mut().for_each(|d| *d = false);
            }
        }
        clock += remaining;
        self.work_since_ckpt_s += remaining;
        if commit_checkpoint
            && self.interval_s.is_finite()
            && self.work_since_ckpt_s >= self.interval_s
        {
            clock += self.ckpt_cost_s;
            self.work_since_ckpt_s = 0.0;
            self.stats.checkpoints += 1;
            self.stats.ckpt_overhead_s += self.ckpt_cost_s;
        }
        let extra = clock - synced_now_s;
        self.last_s = clock;
        extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_plan(interval: f64) -> CheckpointPlan {
        CheckpointPlan::fixed(interval, 0.01, 0.02)
    }

    #[test]
    fn failure_free_fixed_plan_charges_pure_checkpoint_overhead() {
        let mut s = CkptSession::new(&fixed_plan(0.1), f64::INFINITY, &[], 2, 1);
        // Three boundaries 0.1s apart: one checkpoint each.
        let mut total_extra = 0.0;
        for k in 1..=3 {
            // Boundaries on the overhead-inclusive timeline.
            let synced = k as f64 * 0.1 + total_extra;
            total_extra += s.advance(synced);
        }
        let stats = s.stats();
        assert_eq!(stats.checkpoints, 3);
        assert_eq!(stats.recoveries, 0);
        assert!((stats.ckpt_overhead_s - 0.03).abs() < 1e-12);
        assert_eq!(stats.time_lost_s, 0.0);
        assert!((total_extra - 0.03).abs() < 1e-12);
    }

    #[test]
    fn interval_below_boundary_spacing_checkpoints_every_boundary_once() {
        // Work accumulates 0.1s per boundary but the interval is 0.25s:
        // checkpoints commit at boundaries 3, 6, ... (work since last >=
        // interval), never more than once per boundary.
        let mut s = CkptSession::new(&fixed_plan(0.25), f64::INFINITY, &[], 1, 1);
        let mut extra = 0.0;
        for k in 1..=6 {
            extra += s.advance(k as f64 * 0.1 + extra);
        }
        assert_eq!(s.stats().checkpoints, 2);
    }

    #[test]
    fn young_plan_without_failures_never_checkpoints() {
        let mut s = CkptSession::new(&CheckpointPlan::young(0.01, 0.02), f64::INFINITY, &[], 2, 1);
        assert_eq!(s.advance(1.0), 0.0);
        assert_eq!(s.finish(2.0), 0.0);
        assert_eq!(s.stats(), CkptStats::default());
    }

    #[test]
    fn a_native_crash_rolls_back_to_the_last_checkpoint() {
        // Binary-exact values (powers of two) so the >= interval threshold
        // is exact: interval 0.125, C = 0.015625, R = 0.03125.  Crash at
        // t = 0.3125: by then checkpoints committed at the 0.125 boundary
        // (clock 0.140625) and the 0.25 boundary (clock 0.28125).  The
        // crash is observed at the next boundary: restart R plus redo of
        // the work since clock 0.28125.
        let plan = CheckpointPlan::fixed(0.125, 0.015625, 0.03125);
        let mut s = CkptSession::new(&plan, f64::INFINITY, &[(0, 0.3125)], 1, 1);
        let e1 = s.advance(0.125);
        assert_eq!(e1, 0.015625, "first checkpoint");
        let e2 = s.advance(0.25 + e1);
        assert_eq!(e2, 0.015625, "second checkpoint");
        // Boundary at synced 0.375 + overhead so far (2C): the crash fired
        // at absolute 0.3125, work since last ckpt at that instant is
        // 0.3125 - 0.28125 = 0.03125.  Extra = restart 0.03125 + redo
        // 0.03125 + the checkpoint this boundary commits (redo restores the
        // full 0.125 of segment work) = 0.078125.
        let e3 = s.advance(0.375 + e1 + e2);
        let stats = s.stats();
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.checkpoints, 3);
        assert_eq!(stats.time_lost_s, 0.0625, "{stats:?}");
        assert_eq!(e3, 0.078125, "recovery boundary: {e3}");
    }

    #[test]
    fn replicated_ranks_only_roll_back_when_all_replicas_are_lost() {
        // 2 logical ranks x 2 replicas; replicas of logical 0 are physical
        // 0 and 2.  Losing only replica 0 defeats nothing.
        let mut s = CkptSession::new(&fixed_plan(10.0), f64::INFINITY, &[(0, 0.5)], 2, 2);
        assert_eq!(s.finish(1.0), 0.0);
        assert_eq!(s.stats().recoveries, 0);
        // Losing both replicas of logical 0 defeats it.
        let mut s = CkptSession::new(
            &fixed_plan(10.0),
            f64::INFINITY,
            &[(0, 0.3), (2, 0.5)],
            2,
            2,
        );
        let extra = s.finish(1.0);
        assert_eq!(s.stats().recoveries, 1);
        // Lost work at t=0.5 is 0.5 (no checkpoint ever committed), plus
        // the 0.02 restart.
        assert!((extra - 0.52).abs() < 1e-12, "{extra}");
        // A recovery revives every replica: the same single-replica loss
        // afterwards defeats nothing again.
        let mut s = CkptSession::new(
            &fixed_plan(10.0),
            f64::INFINITY,
            &[(0, 0.3), (2, 0.5), (1, 0.9)],
            2,
            2,
        );
        s.finish(1.0);
        assert_eq!(s.stats().recoveries, 1);
    }

    #[test]
    fn correlated_same_timestamp_events_are_one_recovery() {
        // Both replicas of logical 0 die at the same instant (a node
        // event): one recovery, not two.
        let mut s = CkptSession::new(
            &fixed_plan(10.0),
            f64::INFINITY,
            &[(0, 0.4), (2, 0.4)],
            2,
            2,
        );
        s.finish(1.0);
        assert_eq!(s.stats().recoveries, 1);
    }

    #[test]
    fn crash_during_redo_work_recovers_again() {
        // Native, no checkpoints ever (huge interval): the crash at 0.5
        // loses 0.5 of work; the second crash at absolute 0.8 lands inside
        // the redo window — by then the restart (0.02) has completed and
        // 0.28 of the redo has been re-executed past the (initial-state)
        // checkpoint, so the second rollback loses exactly those 0.28.
        let mut s = CkptSession::new(
            &fixed_plan(100.0),
            f64::INFINITY,
            &[(0, 0.5), (0, 0.8)],
            1,
            1,
        );
        let extra = s.finish(1.0);
        let stats = s.stats();
        assert_eq!(stats.recoveries, 2);
        // time_lost = (0.02 + 0.5) + (0.02 + 0.28).
        assert!((stats.time_lost_s - 0.82).abs() < 1e-12, "{stats:?}");
        assert!((extra - 0.82).abs() < 1e-12, "{extra}");
    }

    #[test]
    fn crashes_after_the_run_never_fire() {
        let mut s = CkptSession::new(&fixed_plan(10.0), f64::INFINITY, &[(0, 5.0)], 1, 1);
        assert_eq!(s.finish(1.0), 0.0);
        assert_eq!(s.stats().recoveries, 0);
    }

    #[test]
    fn sessions_are_deterministic_and_rank_independent() {
        let crashes = [(1usize, 0.33), (0usize, 0.21), (3usize, 0.21)];
        let run = || {
            let mut s = CkptSession::new(&fixed_plan(0.2), 2.0, &crashes, 2, 2);
            let mut extras = Vec::new();
            let mut total = 0.0;
            for k in 1..=4 {
                let e = s.advance(k as f64 * 0.25 + total);
                total += e;
                extras.push(e);
            }
            extras.push(s.finish(1.25 + total));
            (extras, s.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn efficiency_accounts_useful_time_per_resource() {
        let stats = CkptStats {
            checkpoints: 2,
            recoveries: 1,
            time_lost_s: 0.2,
            ckpt_overhead_s: 0.1,
        };
        // Native: (1.0 - 0.3) / 1.0.
        assert!((stats.efficiency(1.0, 1) - 0.7).abs() < 1e-12);
        // Duplicated resources halve the efficiency.
        assert!((stats.efficiency(1.0, 2) - 0.35).abs() < 1e-12);
        assert_eq!(CkptStats::default().efficiency(0.0, 1), 0.0);
        // Overheads can never push efficiency below zero.
        assert_eq!(stats.efficiency(0.25, 1), 0.0);
    }
}
