//! Failure-injection tests: the crash scenarios of Section III-B2 and
//! Figure 2 of the paper.

use ipr_core::prelude::*;
use replication::{ExecutionMode, FailureInjector, ProtocolPoint, ReplicatedEnv};
use simmpi::{run_cluster, ClusterConfig};

/// Runs a 2-replica (degree 2, one logical process) cluster where rank 0 is
/// replica 0 and rank 1 is replica 1, with the given injector plan, and a
/// body that receives the runtime and workspace.
fn run_pair<R, F>(
    injector_setup: impl Fn(&FailureInjector) + Sync,
    body: F,
) -> Vec<Result<R, String>>
where
    R: Send,
    F: Fn(&mut IntraRuntime, &mut Workspace) -> R + Send + Sync,
{
    let report = run_cluster(&ClusterConfig::ideal(2), |proc| {
        let injector = FailureInjector::none();
        injector_setup(&injector);
        let env =
            ReplicatedEnv::new(proc, ExecutionMode::IntraParallel { degree: 2 }, injector).unwrap();
        let mut rt = IntraRuntime::new(env, IntraConfig::paper());
        let mut ws = Workspace::new();
        body(&mut rt, &mut ws)
    });
    report.results
}

/// Builds the Figure-2 style section: one task with an inout variable `a`
/// and an out variable `b`, computing `a <- a + 1; b <- a * 2`.
fn figure2_section(
    rt: &mut IntraRuntime,
    ws: &mut Workspace,
    a: VarId,
    b: VarId,
) -> IntraResult<SectionReport> {
    let mut section = rt.section(ws);
    section.add_task(TaskDef::new(
        "task1",
        |ctx| {
            // outputs[0] = a (inout), outputs[1] = b (out)
            ctx.outputs[0][0] += 1.0;
            ctx.outputs[1][0] = ctx.outputs[0][0] * 2.0;
        },
        vec![ArgSpec::inout(a, 0..1), ArgSpec::output(b, 0..1)],
    ))?;
    section.end()
}

#[test]
fn failure_before_any_update_send_triggers_local_reexecution() {
    // Replica 0 (physical rank 0) owns the first half of the tasks and
    // crashes right after executing its first task, before sending anything.
    // Replica 1 must re-execute all of replica 0's tasks and finish with the
    // correct result.
    let n = 64;
    let results = run_pair(
        |inj| {
            inj.arm(
                0,
                ProtocolPoint::BeforeUpdateSend {
                    section: 0,
                    task: 0,
                },
            );
        },
        move |rt, ws| {
            let x = ws.add("x", (0..n).map(|i| i as f64).collect());
            let w = ws.add_zeros("w", n);
            let mut section = rt.section(ws);
            section
                .add_split(n, |chunk| {
                    TaskDef::new(
                        "double",
                        |ctx| {
                            for i in 0..ctx.outputs[0].len() {
                                ctx.outputs[0][i] = 2.0 * ctx.inputs[0][i];
                            }
                        },
                        vec![ArgSpec::input(x, chunk.clone()), ArgSpec::output(w, chunk)],
                    )
                })
                .unwrap();
            match section.end() {
                Ok(report) => Ok((ws.get(w).to_vec(), report)),
                Err(e) => Err(e),
            }
        },
    );
    // Replica 0 crashed.
    let r0 = results[0].as_ref().unwrap();
    assert_eq!(r0.as_ref().unwrap_err(), &IntraError::Crashed);
    // Replica 1 finished with the full, correct result.
    let (w, report) = results[1].as_ref().unwrap().as_ref().unwrap();
    let expected: Vec<f64> = (0..n).map(|i| 2.0 * i as f64).collect();
    assert_eq!(w, &expected);
    assert_eq!(
        report.tasks_executed_locally, 8,
        "survivor executed everything"
    );
    assert!(
        report.tasks_reexecuted >= 4,
        "replica 0's tasks were re-executed"
    );
    assert_eq!(report.tasks_received, 0);
}

#[test]
fn figure2_partial_update_does_not_corrupt_inout_variables() {
    // The exact scenario of Figure 2b/2c: replica 0 executes task1, sends the
    // update of `a` but crashes before sending `b`.  Replica 1 must
    // re-execute task1 starting from the snapshotted value of `a`, ending
    // with a = 2, b = 4 — not the corrupted a = 3, b = 6.
    let results = run_pair(
        |inj| {
            inj.arm(
                0,
                ProtocolPoint::MidUpdateSend {
                    section: 0,
                    task: 0,
                    vars_sent: 1,
                },
            );
        },
        |rt, ws| {
            let a = ws.add("a", vec![1.0]);
            let b = ws.add("b", vec![0.0]);
            match figure2_section(rt, ws, a, b) {
                Ok(_) => Ok((ws.get(a)[0], ws.get(b)[0])),
                Err(e) => Err(e),
            }
        },
    );
    assert_eq!(
        results[0].as_ref().unwrap().as_ref().unwrap_err(),
        &IntraError::Crashed
    );
    let (a, b) = results[1].as_ref().unwrap().as_ref().unwrap();
    assert_eq!(
        (*a, *b),
        (2.0, 4.0),
        "re-execution must start from the snapshot"
    );
}

#[test]
fn failure_after_full_update_leaves_peer_with_received_result() {
    // Replica 0 crashes right after sending the complete update of its last
    // task: replica 1 receives everything and does not need to re-execute.
    let n = 32;
    let results = run_pair(
        |inj| {
            // 8 tasks, replica 0 owns tasks 0..4; crash after the update of
            // its last task (index 3) has been fully sent.
            inj.arm(
                0,
                ProtocolPoint::AfterUpdateSend {
                    section: 0,
                    task: 3,
                },
            );
        },
        move |rt, ws| {
            let x = ws.add("x", (0..n).map(|i| i as f64).collect());
            let w = ws.add_zeros("w", n);
            let mut section = rt.section(ws);
            section
                .add_split(n, |chunk| {
                    TaskDef::new(
                        "negate",
                        |ctx| {
                            for i in 0..ctx.outputs[0].len() {
                                ctx.outputs[0][i] = -ctx.inputs[0][i];
                            }
                        },
                        vec![ArgSpec::input(x, chunk.clone()), ArgSpec::output(w, chunk)],
                    )
                })
                .unwrap();
            match section.end() {
                Ok(report) => Ok((ws.get(w).to_vec(), report)),
                Err(e) => Err(e),
            }
        },
    );
    assert!(results[0].as_ref().unwrap().is_err());
    let (w, report) = results[1].as_ref().unwrap().as_ref().unwrap();
    let expected: Vec<f64> = (0..n).map(|i| -(i as f64)).collect();
    assert_eq!(w, &expected);
    // All of replica 0's updates were sent before the crash, so replica 1
    // received them all (no re-execution necessary).
    assert_eq!(report.tasks_reexecuted, 0);
    assert_eq!(report.tasks_received, 4);
}

#[test]
fn failure_outside_sections_moves_all_work_to_the_survivor() {
    // Replica 0 crashes after the first section completes (outside any
    // section).  The second section must be executed entirely by replica 1.
    let n = 40;
    let results = run_pair(
        |inj| {
            inj.arm(0, ProtocolPoint::SectionExit { section: 0 });
        },
        move |rt, ws| {
            let x = ws.add("x", vec![1.0; n]);
            let w = ws.add_zeros("w", n);
            let mut reports = Vec::new();
            for step in 0..2 {
                let mut section = rt.section(ws);
                section
                    .add_split(n, |chunk| {
                        TaskDef::new(
                            "add_step",
                            move |ctx| {
                                let step = ctx.scalars[0];
                                for i in 0..ctx.outputs[0].len() {
                                    ctx.outputs[0][i] = ctx.inputs[0][i] + step;
                                }
                            },
                            vec![ArgSpec::input(x, chunk.clone()), ArgSpec::output(w, chunk)],
                        )
                        .with_scalars(vec![step as f64 + 1.0])
                    })
                    .unwrap();
                match section.end() {
                    Ok(r) => reports.push(r),
                    Err(e) => return Err(e),
                }
                // Copy w back into x between sections (outside the section).
                let w_now = ws.get(w).to_vec();
                ws.get_mut(x).copy_from_slice(&w_now);
            }
            Ok((ws.get(x)[0], reports))
        },
    );
    // Replica 0 crashed at the exit of section 0.
    assert!(results[0].as_ref().unwrap().is_err());
    let (value, reports) = results[1].as_ref().unwrap().as_ref().unwrap();
    // x = 1 + 1 (section 0) + 2 (section 1) = 4
    assert_eq!(*value, 4.0);
    assert_eq!(reports.len(), 2);
    // In section 0 both replicas were alive (4 tasks each); in section 1 the
    // survivor executed all 8 tasks and received none.  The 4 tasks that the
    // static schedule still maps to the dead replica are adopted locally.
    assert_eq!(reports[0].tasks_executed_locally, 4);
    assert_eq!(reports[1].tasks_executed_locally, 8);
    assert_eq!(reports[1].tasks_received, 0);
    assert_eq!(reports[1].tasks_reexecuted, 4);
}

#[test]
fn failure_at_section_entry_is_survivable() {
    let n = 16;
    let results = run_pair(
        |inj| {
            inj.arm(0, ProtocolPoint::SectionEnter { section: 0 });
        },
        move |rt, ws| {
            let x = ws.add("x", vec![2.0; n]);
            let w = ws.add_zeros("w", n);
            let mut section = rt.section(ws);
            section
                .add_split(n, |chunk| {
                    TaskDef::new(
                        "square",
                        |ctx| {
                            for i in 0..ctx.outputs[0].len() {
                                ctx.outputs[0][i] = ctx.inputs[0][i] * ctx.inputs[0][i];
                            }
                        },
                        vec![ArgSpec::input(x, chunk.clone()), ArgSpec::output(w, chunk)],
                    )
                })
                .unwrap();
            match section.end() {
                Ok(_) => Ok(ws.get(w).to_vec()),
                Err(e) => Err(e),
            }
        },
    );
    assert!(results[0].as_ref().unwrap().is_err());
    let w = results[1].as_ref().unwrap().as_ref().unwrap();
    assert_eq!(w, &vec![4.0; n]);
}

#[test]
fn degree_three_survives_one_crash_and_keeps_sharing() {
    // Three replicas of one logical process; replica 1 (physical rank 1)
    // crashes before sending its updates.  Replicas 0 and 2 must both end up
    // with the complete result.
    let n = 90;
    let report = run_cluster(&ClusterConfig::ideal(3), move |proc| {
        let injector = FailureInjector::none();
        injector.arm(
            1,
            ProtocolPoint::BeforeUpdateSend {
                section: 0,
                task: 3,
            },
        );
        let env =
            ReplicatedEnv::new(proc, ExecutionMode::IntraParallel { degree: 3 }, injector).unwrap();
        let mut rt = IntraRuntime::new(env, IntraConfig::paper().with_tasks_per_section(9));
        let mut ws = Workspace::new();
        let x = ws.add("x", (0..n).map(|i| i as f64).collect());
        let w = ws.add_zeros("w", n);
        let mut section = rt.section(&mut ws);
        section
            .add_split(n, |chunk| {
                TaskDef::new(
                    "shift",
                    |ctx| {
                        for i in 0..ctx.outputs[0].len() {
                            ctx.outputs[0][i] = ctx.inputs[0][i] + 0.5;
                        }
                    },
                    vec![ArgSpec::input(x, chunk.clone()), ArgSpec::output(w, chunk)],
                )
            })
            .unwrap();
        match section.end() {
            Ok(_) => Ok(ws.get(w).to_vec()),
            Err(e) => Err(e),
        }
    });
    let expected: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
    for rank in [0usize, 2] {
        let w = report.results[rank].as_ref().unwrap().as_ref().unwrap();
        assert_eq!(w, &expected, "physical rank {rank}");
    }
    assert!(report.results[1].as_ref().unwrap().is_err());
}

#[test]
fn all_replicas_crashing_is_reported() {
    // Both replicas crash at section entry: each of them must observe its own
    // crash (IntraError::Crashed), and the run must not hang.
    let results = run_pair(
        |inj| {
            inj.arm(0, ProtocolPoint::SectionEnter { section: 0 });
            inj.arm(1, ProtocolPoint::SectionEnter { section: 0 });
        },
        |rt, ws| {
            let x = ws.add("x", vec![1.0; 8]);
            let w = ws.add_zeros("w", 8);
            let mut section = rt.section(ws);
            section
                .add_split(8, |chunk| {
                    TaskDef::new(
                        "id",
                        |ctx| {
                            ctx.outputs[0].copy_from_slice(&ctx.inputs[0]);
                        },
                        vec![ArgSpec::input(x, chunk.clone()), ArgSpec::output(w, chunk)],
                    )
                })
                .unwrap();
            section.end().err()
        },
    );
    for r in results {
        assert_eq!(r.unwrap(), Some(IntraError::Crashed));
    }
}

#[test]
fn consecutive_sections_after_failure_keep_producing_correct_results() {
    // Replica 0 dies in the middle of section 1 (of 3); sections 2 and 3 run
    // degraded but correct.
    let n = 48;
    let results = run_pair(
        |inj| {
            inj.arm(
                0,
                ProtocolPoint::BeforeUpdateSend {
                    section: 1,
                    task: 1,
                },
            );
        },
        move |rt, ws| {
            let x = ws.add("x", vec![1.0; n]);
            let w = ws.add_zeros("w", n);
            for _ in 0..3 {
                let mut section = rt.section(ws);
                section
                    .add_split(n, |chunk| {
                        TaskDef::new(
                            "double",
                            |ctx| {
                                for i in 0..ctx.outputs[0].len() {
                                    ctx.outputs[0][i] = 2.0 * ctx.inputs[0][i];
                                }
                            },
                            vec![ArgSpec::input(x, chunk.clone()), ArgSpec::output(w, chunk)],
                        )
                    })
                    .unwrap();
                let _ = section.end()?;
                let w_now = ws.get(w).to_vec();
                ws.get_mut(x).copy_from_slice(&w_now);
            }
            Ok::<_, IntraError>(ws.get(x)[0])
        },
    );
    assert!(results[0].as_ref().unwrap().is_err());
    assert_eq!(*results[1].as_ref().unwrap().as_ref().unwrap(), 8.0);
}
