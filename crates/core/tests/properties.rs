//! Property-based tests of the intra-parallelization runtime: for arbitrary
//! inputs, task counts and failure points, the work-sharing protocol must
//! produce exactly the same workspace contents as a sequential execution,
//! and all surviving replicas must agree bit for bit.

use ipr_core::assignment_makespan;
use ipr_core::prelude::*;
use proptest::prelude::*;
use replication::{ExecutionMode, FailureInjector, ProtocolPoint, ReplicatedEnv};
use simmpi::{run_cluster, ClusterConfig};

/// Sequential reference: w[i] = alpha*x[i] + beta*y[i], then y scaled by 0.5
/// in place (an inout step).
fn reference(alpha: f64, beta: f64, x: &[f64], y: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let w: Vec<f64> = x.iter().zip(y).map(|(a, b)| alpha * a + beta * b).collect();
    let y2: Vec<f64> = y.iter().map(|v| v * 0.5).collect();
    (w, y2)
}

/// Per-process outcome: the `w` and `y` vectors plus the workspace
/// fingerprint, or the error message of a crashed replica.
type SharedOutcome = Result<(Vec<f64>, Vec<f64>, u64), String>;

fn run_shared(
    alpha: f64,
    beta: f64,
    x_data: Vec<f64>,
    y_data: Vec<f64>,
    tasks: usize,
    degree: usize,
    failure: Option<(usize, ProtocolPoint)>,
) -> Vec<SharedOutcome> {
    let n = x_data.len();
    let report = run_cluster(&ClusterConfig::ideal(degree), move |proc| {
        let injector = FailureInjector::none();
        if let Some((rank, point)) = failure {
            injector.arm(rank, point);
        }
        let env =
            ReplicatedEnv::new(proc, ExecutionMode::IntraParallel { degree }, injector).unwrap();
        let mut rt = IntraRuntime::new(env, IntraConfig::paper().with_tasks_per_section(tasks));
        let mut ws = Workspace::new();
        let x = ws.add("x", x_data.clone());
        let y = ws.add("y", y_data.clone());
        let w = ws.add_zeros("w", n);
        let mut section = rt.section(&mut ws);
        section
            .add_split(n, |chunk| {
                TaskDef::new(
                    "waxpby_then_scale",
                    move |c| {
                        // inputs[0] = x chunk; outputs[0] = w chunk (out),
                        // outputs[1] = y chunk (inout).
                        let x = &c.inputs[0];
                        for (i, &xi) in x.iter().enumerate() {
                            c.outputs[0][i] = alpha * xi + beta * c.outputs[1][i];
                            c.outputs[1][i] *= 0.5;
                        }
                    },
                    vec![
                        ArgSpec::input(x, chunk.clone()),
                        ArgSpec::output(w, chunk.clone()),
                        ArgSpec::inout(y, chunk),
                    ],
                )
            })
            .unwrap();
        match section.end() {
            Ok(_) => Ok((ws.get(w).to_vec(), ws.get(y).to_vec(), ws.fingerprint())),
            Err(e) => Err(format!("{e}")),
        }
    });
    report
        .results
        .into_iter()
        .map(|r| r.expect("no process panicked"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shared_execution_matches_sequential_reference(
        alpha in -3.0f64..3.0,
        beta in -3.0f64..3.0,
        xs in proptest::collection::vec(-100.0f64..100.0, 1..80),
        tasks in 1usize..12,
        degree in 2usize..4,
    ) {
        let ys: Vec<f64> = xs.iter().map(|v| v * 0.25 - 1.0).collect();
        let (w_ref, y_ref) = reference(alpha, beta, &xs, &ys);
        let results = run_shared(alpha, beta, xs, ys, tasks, degree, None);
        let mut fingerprints = Vec::new();
        for r in results {
            let (w, y, fp) = r.expect("no failure injected, every replica succeeds");
            for i in 0..w.len() {
                prop_assert!((w[i] - w_ref[i]).abs() < 1e-9, "w[{i}]");
                prop_assert!((y[i] - y_ref[i]).abs() < 1e-9, "y[{i}]");
            }
            fingerprints.push(fp);
        }
        // All replicas hold bit-identical workspaces.
        prop_assert!(fingerprints.windows(2).all(|p| p[0] == p[1]));
    }

    #[test]
    fn any_single_crash_point_still_yields_the_reference_result(
        xs in proptest::collection::vec(-50.0f64..50.0, 8..64),
        crash_task in 0usize..8,
        crash_kind in 0usize..4,
        crashing_replica in 0usize..2,
    ) {
        let tasks = 8usize;
        let alpha = 2.0;
        let beta = -1.0;
        let ys: Vec<f64> = xs.iter().map(|v| v + 3.0).collect();
        let (w_ref, y_ref) = reference(alpha, beta, &xs, &ys);
        let point = match crash_kind {
            0 => ProtocolPoint::SectionEnter { section: 0 },
            1 => ProtocolPoint::BeforeUpdateSend { section: 0, task: crash_task },
            2 => ProtocolPoint::MidUpdateSend { section: 0, task: crash_task, vars_sent: 1 },
            _ => ProtocolPoint::AfterUpdateSend { section: 0, task: crash_task },
        };
        let results = run_shared(
            alpha,
            beta,
            xs,
            ys,
            tasks,
            2,
            Some((crashing_replica, point)),
        );
        // Whether the injection fires depends on whether the crashing replica
        // owns `crash_task`; in every case, all replicas that complete the
        // section must hold the reference result.
        let mut survivors = 0;
        for (w, y, _) in results.into_iter().flatten() {
            survivors += 1;
            for i in 0..w.len() {
                prop_assert!((w[i] - w_ref[i]).abs() < 1e-9);
                prop_assert!((y[i] - y_ref[i]).abs() < 1e-9);
            }
        }
        prop_assert!(survivors >= 1, "at least one replica must survive");
    }

    #[test]
    fn split_ranges_always_partition(total in 0usize..5000, parts in 1usize..64) {
        let ranges = split_ranges(total, parts);
        // Contiguous, ordered, covering exactly 0..total.
        let mut cursor = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, cursor);
            prop_assert!(r.end > r.start);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, total);
        prop_assert!(ranges.len() <= parts.max(1));
        // Balanced: sizes differ by at most one.
        if let (Some(max), Some(min)) = (
            ranges.iter().map(|r| r.len()).max(),
            ranges.iter().map(|r| r.len()).min(),
        ) {
            prop_assert!(max - min <= 1);
        }
    }

    #[test]
    fn split_ranges_cover_each_index_exactly_once(n in 0usize..3000, parts in 1usize..128) {
        // Complement of `split_ranges_always_partition`: prove the partition
        // property (disjoint + covering + ordered) without assuming the
        // chunks are contiguous — every index of 0..n is hit exactly once.
        let ranges = split_ranges(n, parts);
        let mut hits = vec![0u32; n];
        for r in &ranges {
            for i in r.clone() {
                prop_assert!(i < n, "chunk {r:?} escapes 0..{n}");
                hits[i] += 1;
            }
        }
        prop_assert!(
            hits.iter().all(|&h| h == 1),
            "some index covered != once for n={n}, parts={parts}"
        );
        // Strictly ordered and pairwise disjoint, no empty chunks.
        prop_assert!(ranges.iter().all(|r| !r.is_empty()));
        for pair in ranges.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start);
        }
    }

    #[test]
    fn adaptive_is_deterministic_across_alive_replica_subsets(
        weights in proptest::collection::vec(0.01f64..100.0, 0..48),
        alive_mask in 1u8..15,
    ) {
        // Failure-driven rescheduling recomputes the assignment on every
        // replica independently, over whatever replica subset it passes in;
        // the adaptive scheduler must be a pure function of its inputs.
        let alive: Vec<usize> = (0..4).filter(|i| alive_mask & (1 << i) != 0).collect();
        let s = AdaptiveScheduler;
        let first = s.assign(&weights, &alive);
        prop_assert_eq!(&first, &s.assign(&weights, &alive));
        prop_assert_eq!(&first, &AdaptiveScheduler.assign(&weights, &alive));
        prop_assert_eq!(first.len(), weights.len());
        for r in &first {
            prop_assert!(alive.contains(r));
        }
        // Restricting to a smaller subset must still be deterministic and
        // valid (the full-set and subset assignments legitimately differ).
        let sub: Vec<usize> = alive[..1].to_vec();
        let a = s.assign(&weights, &sub);
        prop_assert_eq!(&a, &s.assign(&weights, &sub));
        for r in &a {
            prop_assert!(sub.contains(r));
        }
    }

    #[test]
    fn adaptive_makespan_not_worse_than_static_block_on_heterogeneous_weights(
        n in 1usize..48,
        base in 1.05f64..2.5,
        scale in 0.1f64..10.0,
        k in 2usize..5,
    ) {
        // Heterogeneous profile: geometrically decaying weights (the shape
        // of the ABL-SCHED / ABL-ADAPT workloads).  On decreasing-ordered
        // weights, greedy LPT never loses to the paper's contiguous block
        // split, which can put all the heavy tasks in the first block.
        let weights: Vec<f64> = (0..n).map(|i| scale * base.powi(-(i as i32))).collect();
        let alive: Vec<usize> = (0..k).collect();
        let lpt = assignment_makespan(&weights, &AdaptiveScheduler.assign(&weights, &alive));
        let block = assignment_makespan(&weights, &StaticBlockScheduler.assign(&weights, &alive));
        prop_assert!(
            lpt <= block * (1.0 + 1e-12),
            "adaptive makespan {} worse than static block {}",
            lpt,
            block
        );
    }

    #[test]
    fn native_and_shared_modes_agree(
        xs in proptest::collection::vec(-10.0f64..10.0, 1..40),
        tasks in 1usize..10,
    ) {
        let ys: Vec<f64> = xs.iter().map(|v| 1.0 - v).collect();
        // Shared (2 replicas).
        let shared = run_shared(1.5, 0.5, xs.clone(), ys.clone(), tasks, 2, None);
        let (w_shared, y_shared, _) = shared[0].clone().unwrap();
        // Native (1 process) through the same API.
        let xs2 = xs.clone();
        let ys2 = ys.clone();
        let report = run_cluster(&ClusterConfig::ideal(1), move |proc| {
            let env = ReplicatedEnv::without_failures(proc, ExecutionMode::Native).unwrap();
            let mut rt = IntraRuntime::new(env, IntraConfig::paper().with_tasks_per_section(tasks));
            let mut ws = Workspace::new();
            let x = ws.add("x", xs2.clone());
            let y = ws.add("y", ys2.clone());
            let w = ws.add_zeros("w", xs2.len());
            let mut section = rt.section(&mut ws);
            section
                .add_split(xs2.len(), |chunk| {
                    TaskDef::new(
                        "waxpby_then_scale",
                        |c| {
                            let x = &c.inputs[0];
                            for (i, &xi) in x.iter().enumerate() {
                                c.outputs[0][i] = 1.5 * xi + 0.5 * c.outputs[1][i];
                                c.outputs[1][i] *= 0.5;
                            }
                        },
                        vec![
                            ArgSpec::input(x, chunk.clone()),
                            ArgSpec::output(w, chunk.clone()),
                            ArgSpec::inout(y, chunk),
                        ],
                    )
                })
                .unwrap();
            let _ = section.end().unwrap();
            (ws.get(w).to_vec(), ws.get(y).to_vec())
        });
        let (w_native, y_native) = report.unwrap_results().remove(0);
        prop_assert_eq!(w_shared, w_native);
        prop_assert_eq!(y_shared, y_native);
    }
}
