//! Crash/recovery matrix: every [`ProtocolPoint`] crossed with the three
//! execution modes.
//!
//! In the intra-parallelized mode all five section-level protocol points are
//! reachable; in the native and replicated modes the runtime executes every
//! task locally, so only `SectionEnter` / `SectionExit` exist (the
//! update-send points belong to the work-sharing protocol and must never
//! fire there).  Timed failures (from failure traces) are observed at the
//! first reachable protocol point in every mode.

use ipr_core::prelude::*;
use replication::{ExecutionMode, FailureInjector, ProtocolPoint, ReplicatedEnv};
use simcluster::SimTime;
use simmpi::{run_cluster, ClusterConfig};

const N: usize = 64;

/// Runs a two-section workload (`w = 2x`, then `w = 2w`) on `procs`
/// processes in `mode`, with `injector` shared by every process.  Returns
/// the per-rank results: the final first element of `w` on success.
fn run_workload(
    mode: ExecutionMode,
    procs: usize,
    injector: &FailureInjector,
) -> Vec<Result<IntraResult<f64>, String>> {
    run_workload_on(&ClusterConfig::ideal(procs), mode, injector, 0.0)
}

/// [`run_workload`] on an explicit cluster configuration, with `warmup_s`
/// virtual seconds of modeled work charged before the first section.  The
/// timed-trace tests use both: arrivals at t > 0 are only due once virtual
/// time has advanced past them, which never happens on the zero-cost ideal
/// machine (and, outside the intra mode, this workload models no
/// time-charged communication of its own).
fn run_workload_on(
    config: &ClusterConfig,
    mode: ExecutionMode,
    injector: &FailureInjector,
    warmup_s: f64,
) -> Vec<Result<IntraResult<f64>, String>> {
    let injector = injector.clone();
    let report = run_cluster(config, move |proc| {
        if warmup_s > 0.0 {
            proc.charge_other(SimTime::from_secs(warmup_s));
        }
        let env = ReplicatedEnv::new(proc, mode, injector.clone())?;
        let mut rt = IntraRuntime::new(env, IntraConfig::paper());
        let mut ws = Workspace::new();
        let x = ws.add("x", vec![1.0; N]);
        let w = ws.add_zeros("w", N);
        for step in 0..2 {
            let (src, dst) = if step == 0 { (x, w) } else { (w, w) };
            let mut section = rt.section(&mut ws);
            section.add_split(N, |chunk| {
                let args = if src == dst {
                    vec![ArgSpec::inout(dst, chunk)]
                } else {
                    vec![
                        ArgSpec::input(src, chunk.clone()),
                        ArgSpec::output(dst, chunk),
                    ]
                };
                TaskDef::new(
                    "double",
                    move |ctx| {
                        if ctx.inputs.is_empty() {
                            for v in ctx.outputs[0].iter_mut() {
                                *v *= 2.0;
                            }
                        } else {
                            for i in 0..ctx.outputs[0].len() {
                                ctx.outputs[0][i] = 2.0 * ctx.inputs[0][i];
                            }
                        }
                    },
                    args,
                )
            })?;
            let _ = section.end()?;
        }
        Ok(ws.get(w)[0])
    });
    report.results
}

// Every matrix entry runs on 2 physical processes: native = two independent
// logical processes, replicated/intra = one logical process with two
// replicas.
const ALL_MODES: [ExecutionMode; 3] = [
    ExecutionMode::Native,
    ExecutionMode::Replicated { degree: 2 },
    ExecutionMode::IntraParallel { degree: 2 },
];

/// The section-boundary points exist in every mode: the armed rank crashes
/// there and the other rank finishes with the correct result.
#[test]
fn section_boundary_crashes_are_survivable_in_every_mode() {
    for mode in ALL_MODES {
        for point in [
            ProtocolPoint::SectionEnter { section: 0 },
            ProtocolPoint::SectionExit { section: 0 },
            ProtocolPoint::SectionEnter { section: 1 },
        ] {
            let injector = FailureInjector::none();
            injector.arm(0, point);
            let results = run_workload(mode, 2, &injector);
            let r0 = results[0].as_ref().expect("rank 0 must not panic");
            assert_eq!(
                r0.as_ref().unwrap_err(),
                &IntraError::Crashed,
                "{mode:?} {point:?}: armed rank must crash"
            );
            let r1 = results[1].as_ref().expect("rank 1 must not panic");
            assert_eq!(
                r1.as_ref().expect("survivor completes"),
                &4.0,
                "{mode:?} {point:?}: survivor result"
            );
            assert_eq!(injector.pending(), 0, "{mode:?} {point:?}: injection fired");
            assert_eq!(injector.fired(), vec![(0, point)]);
        }
    }
}

/// The update-send points belong to the work-sharing protocol: they fire in
/// the intra mode (and recovery re-executes the lost tasks), and never fire
/// in the native / replicated modes (where no update protocol runs).
#[test]
fn update_send_crashes_fire_only_in_the_intra_mode() {
    let update_points = [
        ProtocolPoint::BeforeUpdateSend {
            section: 0,
            task: 0,
        },
        ProtocolPoint::MidUpdateSend {
            section: 0,
            task: 0,
            vars_sent: 1,
        },
        ProtocolPoint::AfterUpdateSend {
            section: 0,
            task: 0,
        },
    ];
    for point in update_points {
        // Intra: fires, survivor recovers the correct result.
        let injector = FailureInjector::none();
        injector.arm(0, point);
        let results = run_workload(ExecutionMode::IntraParallel { degree: 2 }, 2, &injector);
        assert_eq!(
            results[0].as_ref().unwrap().as_ref().unwrap_err(),
            &IntraError::Crashed,
            "intra {point:?}"
        );
        assert_eq!(
            results[1].as_ref().unwrap().as_ref().unwrap(),
            &4.0,
            "intra {point:?}: survivor result"
        );
        assert_eq!(injector.pending(), 0, "intra {point:?} must fire");

        // Native / replicated: the point is never reached; the run completes
        // everywhere and the injection stays armed.
        for mode in [
            ExecutionMode::Native,
            ExecutionMode::Replicated { degree: 2 },
        ] {
            let injector = FailureInjector::none();
            injector.arm(0, point);
            let results = run_workload(mode, 2, &injector);
            for (rank, r) in results.iter().enumerate() {
                assert_eq!(
                    r.as_ref().unwrap().as_ref().unwrap(),
                    &4.0,
                    "{mode:?} {point:?} rank {rank} completes"
                );
            }
            assert_eq!(injector.pending(), 1, "{mode:?} {point:?} must not fire");
        }
    }
}

/// Timed failures (the mechanism failure traces arm) are observed at the
/// first protocol point at or after the scheduled virtual time, in every
/// mode.
#[test]
fn timed_failures_fire_at_the_first_protocol_point_in_every_mode() {
    for mode in ALL_MODES {
        let injector = FailureInjector::none();
        // Virtual time 0: due immediately — the first consulted point is
        // SectionEnter of section 0 (the cluster is ideal, so no virtual
        // time passes before it).
        injector.arm_at(0, SimTime::ZERO);
        let results = run_workload(mode, 2, &injector);
        assert_eq!(
            results[0].as_ref().unwrap().as_ref().unwrap_err(),
            &IntraError::Crashed,
            "{mode:?}: timed failure must crash rank 0"
        );
        assert_eq!(
            results[1].as_ref().unwrap().as_ref().unwrap(),
            &4.0,
            "{mode:?}: survivor result"
        );
        let fired = injector.fired_timed();
        assert_eq!(fired.len(), 1, "{mode:?}");
        assert_eq!(fired[0].rank, 0);
        assert_eq!(
            fired[0].point,
            ProtocolPoint::SectionEnter { section: 0 },
            "{mode:?}: first reachable protocol point"
        );
    }
}

/// Recovery bookkeeping in the intra mode: a crash before any update was
/// sent makes the survivor re-execute the lost tasks, and the section report
/// records exactly one observed replica failure.
#[test]
fn intra_recovery_reports_the_observed_failure() {
    let injector = FailureInjector::none();
    injector.arm(
        0,
        ProtocolPoint::BeforeUpdateSend {
            section: 0,
            task: 0,
        },
    );
    let injector2 = injector.clone();
    let report = run_cluster(&ClusterConfig::ideal(2), move |proc| {
        let env = ReplicatedEnv::new(
            proc,
            ExecutionMode::IntraParallel { degree: 2 },
            injector2.clone(),
        )
        .unwrap();
        let mut rt = IntraRuntime::new(env, IntraConfig::paper());
        let mut ws = Workspace::new();
        let x = ws.add("x", vec![3.0; N]);
        let w = ws.add_zeros("w", N);
        let mut section = rt.section(&mut ws);
        section
            .add_split(N, |chunk| {
                TaskDef::new(
                    "copy",
                    |ctx| ctx.outputs[0].copy_from_slice(&ctx.inputs[0]),
                    vec![ArgSpec::input(x, chunk.clone()), ArgSpec::output(w, chunk)],
                )
            })
            .unwrap();
        section.end()
    });
    let survivor = report.results[1].as_ref().unwrap().as_ref().unwrap();
    assert_eq!(survivor.replica_failures_observed, 1);
    assert!(survivor.tasks_reexecuted > 0);
    assert_eq!(
        survivor.tasks_executed_locally, survivor.num_tasks,
        "survivor ends up executing everything"
    );
}

/// Failure traces drawn from the fitted MTBF hazards (Weibull, LogNormal)
/// arm timed failures exactly like the homogeneous traces: in every mode
/// the armed rank crashes at the first protocol point past its first
/// arrival, and the survivor finishes with the correct result.
#[test]
fn mtbf_hazard_traces_crash_and_recover_in_every_mode() {
    use replication::{sample_failure_trace, FailureRate};

    // MTBF of 1e-9 virtual seconds: the first arrival lands long before
    // the workload's first modeled compute step (~1e-7 s of virtual time),
    // so the crash is observed at an early protocol point.
    let horizon = SimTime::from_secs(1e-6);
    for rate in [
        FailureRate::weibull_hpc(1e-9),
        FailureRate::lognormal_hpc(1e-9),
    ] {
        let trace = sample_failure_trace(rate, horizon, 42, 0);
        assert!(
            !trace.is_empty(),
            "{}: a hot hazard must produce arrivals",
            rate.label()
        );
        for mode in ALL_MODES {
            let injector = FailureInjector::none();
            injector.arm_trace(0, &trace);
            let results = run_workload_on(&ClusterConfig::new(2), mode, &injector, 1e-7);
            assert_eq!(
                results[0].as_ref().unwrap().as_ref().unwrap_err(),
                &IntraError::Crashed,
                "{mode:?} {}: traced rank must crash",
                rate.label()
            );
            assert_eq!(
                results[1].as_ref().unwrap().as_ref().unwrap(),
                &4.0,
                "{mode:?} {}: survivor result",
                rate.label()
            );
            let fired = injector.fired_timed();
            assert_eq!(fired.len(), 1, "{mode:?} {}", rate.label());
            assert_eq!(fired[0].scheduled, trace[0], "earliest arrival fires");
        }
    }
}

/// A correlated node event expanded over a replica-disjoint topology arms
/// one whole replica set; the intra runtime recovers on the other set.
#[test]
fn correlated_node_loss_is_survivable_under_replica_disjoint_placement() {
    use replication::{CorrelatedPlan, FailureDomain, FailureRate};
    use simcluster::Topology;

    // 2 logical ranks x 2 replicas on 2-core nodes: node 0 = replica set 0.
    let topo = Topology::replica_disjoint(2, 2, 2);
    let plan = CorrelatedPlan::new(
        FailureDomain::Node,
        FailureRate::Constant(1e9),
        SimTime::from_secs(1e-6),
    );
    let crashes = plan.crashes(&topo, 42);
    let injector = FailureInjector::none();
    // Keep only node 0's event: a single correlated loss.
    for &(rank, at) in crashes.iter().filter(|&&(r, _)| topo.node_of(r) == 0) {
        injector.arm_at(rank, at);
    }
    let results = run_workload_on(
        &ClusterConfig::new(4),
        ExecutionMode::IntraParallel { degree: 2 },
        &injector,
        1e-7,
    );
    for rank in topo.ranks_on(0) {
        assert_eq!(
            results[rank].as_ref().unwrap().as_ref().unwrap_err(),
            &IntraError::Crashed,
            "rank {rank} of the lost node"
        );
    }
    for rank in topo.ranks_on(1) {
        assert_eq!(
            results[rank].as_ref().unwrap().as_ref().unwrap(),
            &4.0,
            "rank {rank} of the surviving node"
        );
    }
}
