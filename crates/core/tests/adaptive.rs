//! Integration tests of the adaptive scheduling subsystem: measured-cost
//! recording, EMA convergence through real sections, warm-up behaviour of
//! the adaptive scheduler, and its interaction with replica failures.
//!
//! The workload is a heterogeneous section mixing flop-bound "push-like"
//! tasks with memory-bound "sparsemv-like" tasks.  The declared scheduling
//! weight (`max(flops, mem_bytes)`, a unit-mixing scalar) mis-ranks tasks
//! across the two roofline regimes, so LPT on declared weights
//! (`CostAwareScheduler`) is measurably worse than LPT on learned execution
//! times (`AdaptiveScheduler` after one warm-up iteration).

use ipr_core::prelude::*;
use replication::{ExecutionMode, FailureInjector, ProtocolPoint, ReplicatedEnv};
use simmpi::{run_cluster, ClusterConfig};
use std::sync::Arc;

/// The heterogeneous task set: (name, flops, mem_bytes).  Mirrors
/// `ipr_bench::ablations::adaptive_task_set` (ipr-core cannot depend on the
/// bench crate).
///
/// On the Grid'5000 machine model (5 Gflop/s, 3.2 GB/s per core) the true
/// roofline times are 0.2, 0.28125, 0.1875, 0.1, 0.0625 and 0.04 s, while
/// the declared weights rank task `push-a` as the most expensive.  LPT on
/// declared weights yields a 0.509 s makespan; LPT on true times 0.444 s.
fn hetero_tasks() -> Vec<(&'static str, f64, f64)> {
    vec![
        ("push-a", 1.0e9, 1.0e6),
        ("spmv-b", 1.0e7, 9.0e8),
        ("spmv-c", 1.0e7, 6.0e8),
        ("push-d", 5.0e8, 1.0e6),
        ("spmv-e", 1.0e7, 2.0e8),
        ("push-f", 2.0e8, 1.0e6),
    ]
}

/// Per-process outcome of [`run_hetero`]: the per-iteration section times
/// plus the learned (cost-model key, predicted seconds) pairs.
type HeteroOutcome = Result<(Vec<f64>, Vec<(String, f64)>), String>;

/// Runs `reps` instances of the heterogeneous section on a 2-replica
/// logical process and returns, per physical process, the per-iteration
/// section times plus the learned cost-model predictions.
fn run_hetero(
    scheduler: &'static str,
    reps: usize,
    failure: Option<(usize, ProtocolPoint)>,
) -> Vec<HeteroOutcome> {
    let config = ClusterConfig::new(2);
    let report = run_cluster(&config, move |proc| {
        let injector = FailureInjector::none();
        if let Some((rank, point)) = failure {
            injector.arm(rank, point);
        }
        let env =
            ReplicatedEnv::new(proc, ExecutionMode::IntraParallel { degree: 2 }, injector).unwrap();
        let intra = IntraConfig::paper().with_scheduler_kind(scheduler.parse().unwrap());
        let mut rt = IntraRuntime::new(env, intra);
        let mut ws = Workspace::new();
        let tasks = hetero_tasks();
        let out = ws.add_zeros("out", tasks.len());
        for _ in 0..reps {
            let mut section = rt.section(&mut ws);
            for (t, (name, flops, mem)) in tasks.iter().enumerate() {
                section
                    .add_task(
                        TaskDef::new(
                            name,
                            |c| c.outputs[0][0] += 1.0,
                            vec![ArgSpec::inout(out, t..t + 1)],
                        )
                        .with_cost(TaskCost::new(*flops, *mem)),
                    )
                    .unwrap();
            }
            if let Err(e) = section.end() {
                return Err(format!("{e}"));
            }
        }
        let times: Vec<f64> = rt
            .report()
            .sections()
            .iter()
            .map(|s| s.total_time().as_secs())
            .collect();
        let learned: Vec<(String, f64)> = tasks
            .iter()
            .map(|(name, _, _)| {
                // Every name occurs once per section, so the history key is
                // the first instance of the name.
                let key = ipr_core::cost::instance_key(name, 0);
                (
                    name.to_string(),
                    rt.cost_model().predict(&key).unwrap_or(f64::NAN),
                )
            })
            .collect();
        Ok((times, learned))
    });
    report
        .results
        .into_iter()
        .map(|r| r.expect("no process panicked"))
        .collect()
}

/// Per-iteration makespan: max over the replicas of the section time.
fn makespans(results: &[HeteroOutcome]) -> Vec<f64> {
    let ok: Vec<&Vec<f64>> = results
        .iter()
        .map(|r| &r.as_ref().expect("replica failed").0)
        .collect();
    let reps = ok[0].len();
    (0..reps)
        .map(|i| ok.iter().map(|t| t[i]).fold(0.0f64, f64::max))
        .collect()
}

#[test]
fn adaptive_converges_after_one_warmup_iteration() {
    let adaptive = makespans(&run_hetero("adaptive", 5, None));
    let cost_aware = makespans(&run_hetero("cost-aware", 5, None));
    // Iteration 0: no history yet, adaptive falls back to declared weights
    // and must match cost-aware exactly.
    assert!(
        (adaptive[0] - cost_aware[0]).abs() < 1e-9,
        "warm-up iteration differs: {} vs {}",
        adaptive[0],
        cost_aware[0]
    );
    // From iteration 1 on, the learned times drive the assignment: the
    // acceptance criterion is "matching or beating cost-aware after <= 3
    // warm-up iterations"; this workload needs exactly one.
    for i in 1..adaptive.len() {
        assert!(
            adaptive[i] <= cost_aware[i] + 1e-9,
            "iteration {i}: adaptive {} > cost-aware {}",
            adaptive[i],
            cost_aware[i]
        );
    }
    // And the win is real, not a tie: ~13 % on this workload.
    assert!(
        adaptive[4] < 0.95 * cost_aware[4],
        "expected a real improvement: adaptive {} vs cost-aware {}",
        adaptive[4],
        cost_aware[4]
    );
}

#[test]
fn cost_model_learns_true_roofline_times() {
    let results = run_hetero("adaptive", 4, None);
    for r in &results {
        let (_, learned) = r.as_ref().expect("replica failed");
        for (name, predicted) in learned {
            let (_, flops, mem) = *hetero_tasks()
                .iter()
                .find(|(n, _, _)| n == name)
                .expect("known task");
            // True roofline time on the default Grid'5000 model (plus the
            // fixed 0.5 us per-region overhead).
            let truth = (flops / 5.0e9).max(mem / 3.2e9) + 0.5e-6;
            assert!(
                (predicted - truth).abs() < 1e-9,
                "{name}: learned {predicted}, true {truth}"
            );
        }
    }
}

#[test]
fn task_cost_samples_are_recorded_and_replica_identical() {
    let config = ClusterConfig::new(2);
    let report = run_cluster(&config, |proc| {
        let env = ReplicatedEnv::without_failures(proc, ExecutionMode::IntraParallel { degree: 2 })
            .unwrap();
        let mut rt = IntraRuntime::new(
            env.clone(),
            IntraConfig::paper().with_scheduler(Arc::new(CostAwareScheduler)),
        );
        let mut ws = Workspace::new();
        let tasks = hetero_tasks();
        let out = ws.add_zeros("out", tasks.len());
        let mut section = rt.section(&mut ws);
        for (t, (name, flops, mem)) in tasks.iter().enumerate() {
            section
                .add_task(
                    TaskDef::new(
                        name,
                        |c| c.outputs[0][0] = 1.0,
                        vec![ArgSpec::output(out, t..t + 1)],
                    )
                    .with_cost(TaskCost::new(*flops, *mem)),
                )
                .unwrap();
        }
        let sr = section.end().unwrap();
        (sr, env.replica_id())
    });
    let results = report.unwrap_results();
    let (ref sr0, _) = results[0];
    for (sr, replica) in &results {
        assert_eq!(sr.task_costs.len(), hetero_tasks().len());
        for sample in &sr.task_costs {
            assert!(sample.observed_seconds > 0.0);
            assert_eq!(sample.executed_locally, sample.executed_by == *replica);
        }
        let local = sr.task_costs.iter().filter(|s| s.executed_locally).count();
        assert_eq!(local, sr.tasks_executed_locally);
        // The cost stream is bit-identical across replicas (the
        // determinism contract of the adaptive subsystem): only the
        // locality flag differs.
        for (a, b) in sr.task_costs.iter().zip(&sr0.task_costs) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.occurrence, b.occurrence);
            assert_eq!(a.declared_weight, b.declared_weight);
            assert_eq!(a.observed_seconds, b.observed_seconds);
            assert_eq!(a.executed_by, b.executed_by);
        }
        assert!(sr.observed_task_seconds() > 0.0);
    }
}

#[test]
fn adaptive_sections_survive_replica_crash() {
    // Crash replica 1 after it sent the update of its first task in the
    // second section: replica 0 must adopt the rest and finish every
    // iteration with the correct result.
    let results = run_hetero(
        "adaptive",
        4,
        Some((
            1,
            ProtocolPoint::AfterUpdateSend {
                section: 1,
                task: 0,
            },
        )),
    );
    let survivors: Vec<_> = results.iter().filter(|r| r.is_ok()).collect();
    assert_eq!(survivors.len(), 1, "exactly replica 0 survives");
    let (times, _) = survivors[0].as_ref().unwrap();
    assert_eq!(times.len(), 4, "all iterations completed");
}

#[test]
fn same_named_chunks_learn_independent_histories() {
    // Real sections launch many tasks under one name (HPCCG's sparsemv is
    // eight identically named chunks).  The cost model keys histories by
    // name *and* occurrence index, so heterogeneous same-named chunks must
    // still be differentiated: with a merged history, all-equal weights
    // would tie-break LPT into a 0.381 s split; per-instance histories
    // reach the 0.321 s LPT-on-true-times split.
    let chunks: Vec<(f64, f64)> = vec![
        (1.0e7, 9.0e8), // mem-bound, true 0.28125 s
        (1.0e9, 1.0e6), // flop-bound, true 0.2 s
        (5.0e8, 1.0e6), // flop-bound, true 0.1 s
        (2.0e8, 1.0e6), // flop-bound, true 0.04 s
    ];
    let reps = 4usize;
    let chunks2 = chunks.clone();
    let report = run_cluster(&ClusterConfig::new(2), move |proc| {
        let env = ReplicatedEnv::without_failures(proc, ExecutionMode::IntraParallel { degree: 2 })
            .unwrap();
        let intra = IntraConfig::paper().with_scheduler_kind(SchedulerKind::Adaptive);
        let mut rt = IntraRuntime::new(env, intra);
        let mut ws = Workspace::new();
        let out = ws.add_zeros("out", chunks2.len());
        for _ in 0..reps {
            let mut section = rt.section(&mut ws);
            for (t, (flops, mem)) in chunks2.iter().enumerate() {
                section
                    .add_task(
                        TaskDef::new(
                            "chunk",
                            |c| c.outputs[0][0] += 1.0,
                            vec![ArgSpec::inout(out, t..t + 1)],
                        )
                        .with_cost(TaskCost::new(*flops, *mem)),
                    )
                    .unwrap();
            }
            let _ = section.end().unwrap();
        }
        let times: Vec<f64> = rt
            .report()
            .sections()
            .iter()
            .map(|s| s.total_time().as_secs())
            .collect();
        let keys: Vec<Option<f64>> = (0..chunks2.len())
            .map(|k| {
                rt.cost_model()
                    .predict(&ipr_core::cost::instance_key("chunk", k))
            })
            .collect();
        (times, keys)
    });
    let results = report.unwrap_results();
    for (times, learned) in &results {
        // One independent history per chunk, each with its true time.
        let truths = [0.28125, 0.2, 0.1, 0.04];
        for (k, l) in learned.iter().enumerate() {
            let l = l.expect("chunk has history");
            assert!((l - truths[k]).abs() < 1e-6, "chunk#{k}: {l}");
        }
        // Warm-up split (declared weights) is 0.381 s; the per-instance
        // histories must reach the LPT-on-true-times split of 0.321 s.
        assert!(times[0] > 0.37, "warm-up iteration: {}", times[0]);
        let last = times[reps - 1];
        assert!(last < 0.33, "converged iteration: {last}");
    }
}

#[test]
fn locality_scheduler_runs_sections_correctly() {
    let results = run_hetero("locality", 3, None);
    for r in &results {
        let (times, _) = r.as_ref().expect("replica failed");
        assert_eq!(times.len(), 3);
        assert!(times.iter().all(|t| *t > 0.0));
    }
}
