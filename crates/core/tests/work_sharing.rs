//! Integration tests of the work-sharing protocol in failure-free runs.

use ipr_core::prelude::*;
use replication::{ExecutionMode, ReplicatedEnv};
use simmpi::{run_cluster, ClusterConfig};

/// Helper: builds the runtime for a process in the given mode.
fn make_rt(proc: simmpi::ProcHandle, mode: ExecutionMode, config: IntraConfig) -> IntraRuntime {
    let env = ReplicatedEnv::without_failures(proc, mode).unwrap();
    IntraRuntime::new(env, config)
}

/// A waxpby-style section: w = alpha*x + beta*y, split into tasks.
#[allow(clippy::too_many_arguments)]
fn waxpby_section(
    rt: &mut IntraRuntime,
    ws: &mut Workspace,
    x: VarId,
    y: VarId,
    w: VarId,
    alpha: f64,
    beta: f64,
    n: usize,
) -> SectionReport {
    let mut section = rt.section(ws);
    section
        .add_split(n, |chunk| {
            TaskDef::new(
                "waxpby",
                |ctx| {
                    let alpha = ctx.scalars[0];
                    let beta = ctx.scalars[1];
                    let x = &ctx.inputs[0];
                    let y = &ctx.inputs[1];
                    let w = &mut ctx.outputs[0];
                    for i in 0..w.len() {
                        w[i] = alpha * x[i] + beta * y[i];
                    }
                },
                vec![
                    ArgSpec::input(x, chunk.clone()),
                    ArgSpec::input(y, chunk.clone()),
                    ArgSpec::output(w, chunk),
                ],
            )
            .with_scalars(vec![alpha, beta])
        })
        .unwrap();
    section.end().unwrap()
}

#[test]
fn two_replicas_share_work_and_stay_consistent() {
    let n = 1000;
    let report = run_cluster(&ClusterConfig::ideal(2), move |proc| {
        let mut rt = make_rt(
            proc,
            ExecutionMode::IntraParallel { degree: 2 },
            IntraConfig::paper(),
        );
        let mut ws = Workspace::new();
        let x = ws.add("x", (0..n).map(|i| i as f64).collect());
        let y = ws.add("y", (0..n).map(|i| (i as f64) * 0.5).collect());
        let w = ws.add_zeros("w", n);
        let sec = waxpby_section(&mut rt, &mut ws, x, y, w, 2.0, -1.0, n);
        (ws.get(w).to_vec(), sec, ws.fingerprint())
    });
    let results = report.unwrap_results();
    let expected: Vec<f64> = (0..n).map(|i| 2.0 * i as f64 - 0.5 * i as f64).collect();
    let (w0, sec0, fp0) = &results[0];
    let (w1, sec1, fp1) = &results[1];
    assert_eq!(w0, &expected);
    assert_eq!(w1, &expected);
    assert_eq!(fp0, fp1, "replicas must hold identical workspaces");
    // 8 tasks, degree 2: each replica executed 4 and received 4.
    assert_eq!(sec0.num_tasks, 8);
    assert_eq!(sec0.tasks_executed_locally, 4);
    assert_eq!(sec0.tasks_received, 4);
    assert_eq!(sec1.tasks_executed_locally, 4);
    assert_eq!(sec0.tasks_reexecuted, 0);
    assert!(sec0.update_bytes_sent > 0);
    assert!(sec0.update_bytes_received > 0);
}

#[test]
fn ddot_style_reduction_shares_partial_sums() {
    // Each task writes one partial sum; the global sum is computed outside
    // the section (as in the paper, the MPI reduction stays outside).
    let n = 512;
    let report = run_cluster(&ClusterConfig::ideal(2), move |proc| {
        let mut rt = make_rt(
            proc,
            ExecutionMode::IntraParallel { degree: 2 },
            IntraConfig::paper(),
        );
        let mut ws = Workspace::new();
        let x = ws.add("x", (0..n).map(|i| (i % 10) as f64).collect());
        let partial = ws.add_zeros("partial", 8);
        let mut section = rt.section(&mut ws);
        let chunks = split_ranges(n, 8);
        for (t, chunk) in chunks.into_iter().enumerate() {
            section
                .add_task(TaskDef::new(
                    "ddot",
                    |ctx| {
                        let x = &ctx.inputs[0];
                        ctx.outputs[0][0] = x.iter().map(|v| v * v).sum();
                    },
                    vec![ArgSpec::input(x, chunk), ArgSpec::output(partial, t..t + 1)],
                ))
                .unwrap();
        }
        let sec = section.end().unwrap();
        let local_sum: f64 = ws.get(partial).iter().sum();
        (local_sum, sec.update_bytes_sent)
    });
    let results = report.unwrap_results();
    let expected: f64 = (0..n).map(|i| ((i % 10) as f64).powi(2)).sum();
    assert_eq!(results[0].0, expected);
    assert_eq!(results[1].0, expected);
    // Each replica ships only 4 scalars (32 modeled bytes).
    assert_eq!(results[0].1, 32);
}

#[test]
fn inout_arguments_round_trip() {
    // Task increments its inout range in place; both replicas must converge
    // on the incremented vector.
    let n = 64;
    let report = run_cluster(&ClusterConfig::ideal(2), move |proc| {
        let mut rt = make_rt(
            proc,
            ExecutionMode::IntraParallel { degree: 2 },
            IntraConfig::paper(),
        );
        let mut ws = Workspace::new();
        let v = ws.add("v", (0..n).map(|i| i as f64).collect());
        let mut section = rt.section(&mut ws);
        section
            .add_split(n, |chunk| {
                TaskDef::new(
                    "increment",
                    |ctx| {
                        for slot in ctx.outputs[0].iter_mut() {
                            *slot += 100.0;
                        }
                    },
                    vec![ArgSpec::inout(v, chunk)],
                )
            })
            .unwrap();
        let sec = section.end().unwrap();
        (ws.get(v).to_vec(), sec.inout_snapshot_bytes)
    });
    let results = report.unwrap_results();
    let expected: Vec<f64> = (0..n).map(|i| i as f64 + 100.0).collect();
    assert_eq!(results[0].0, expected);
    assert_eq!(results[1].0, expected);
    // The whole vector was snapshotted (it is inout).
    assert_eq!(results[0].1, n * 8);
}

#[test]
fn native_and_replicated_modes_execute_everything_locally() {
    for (mode, procs) in [
        (ExecutionMode::Native, 1usize),
        (ExecutionMode::Replicated { degree: 2 }, 2usize),
    ] {
        let n = 128;
        let report = run_cluster(&ClusterConfig::ideal(procs), move |proc| {
            let mut rt = make_rt(proc, mode, IntraConfig::paper());
            let mut ws = Workspace::new();
            let x = ws.add("x", vec![1.0; n]);
            let y = ws.add("y", vec![2.0; n]);
            let w = ws.add_zeros("w", n);
            let sec = waxpby_section(&mut rt, &mut ws, x, y, w, 3.0, 1.0, n);
            (ws.get(w)[0], sec)
        });
        for (value, sec) in report.unwrap_results() {
            assert_eq!(value, 5.0);
            assert_eq!(sec.tasks_executed_locally, sec.num_tasks);
            assert_eq!(sec.tasks_received, 0);
            assert_eq!(
                sec.update_bytes_sent, 0,
                "mode {mode:?} must not ship updates"
            );
        }
    }
}

#[test]
fn multiple_sections_reuse_the_runtime() {
    let n = 100;
    let report = run_cluster(&ClusterConfig::ideal(2), move |proc| {
        let mut rt = make_rt(
            proc,
            ExecutionMode::IntraParallel { degree: 2 },
            IntraConfig::paper(),
        );
        let mut ws = Workspace::new();
        let x = ws.add("x", vec![1.0; n]);
        let y = ws.add("y", vec![1.0; n]);
        let w = ws.add_zeros("w", n);
        for iteration in 0..5 {
            let alpha = iteration as f64 + 1.0;
            let _ = waxpby_section(&mut rt, &mut ws, x, y, w, alpha, 0.0, n);
            // Feed the output back into x for the next iteration.
            let w_now = ws.get(w).to_vec();
            ws.get_mut(x).copy_from_slice(&w_now);
        }
        (
            ws.get(x)[0],
            rt.sections_executed(),
            rt.report().num_sections(),
        )
    });
    for (value, sections, recorded) in report.unwrap_results() {
        // x = 1 * 1 * 2 * 3 * 4 * 5 = 120
        assert_eq!(value, 120.0);
        assert_eq!(sections, 5);
        assert_eq!(recorded, 5);
    }
}

#[test]
fn three_replicas_share_work() {
    let n = 90;
    let report = run_cluster(&ClusterConfig::ideal(3), move |proc| {
        let mut rt = make_rt(
            proc,
            ExecutionMode::IntraParallel { degree: 3 },
            IntraConfig::paper().with_tasks_per_section(9),
        );
        let mut ws = Workspace::new();
        let x = ws.add("x", (0..n).map(|i| i as f64).collect());
        let w = ws.add_zeros("w", n);
        let mut section = rt.section(&mut ws);
        section
            .add_split(n, |chunk| {
                TaskDef::new(
                    "triple",
                    |ctx| {
                        for i in 0..ctx.outputs[0].len() {
                            ctx.outputs[0][i] = 3.0 * ctx.inputs[0][i];
                        }
                    },
                    vec![ArgSpec::input(x, chunk.clone()), ArgSpec::output(w, chunk)],
                )
            })
            .unwrap();
        let sec = section.end().unwrap();
        (ws.get(w).to_vec(), sec.tasks_executed_locally)
    });
    let results = report.unwrap_results();
    let expected: Vec<f64> = (0..n).map(|i| 3.0 * i as f64).collect();
    for (w, local) in &results {
        assert_eq!(w, &expected);
        assert_eq!(*local, 3, "9 tasks over 3 replicas");
    }
}

#[test]
fn schedulers_produce_identical_results() {
    let n = 200;
    for scheduler in [
        std::sync::Arc::new(StaticBlockScheduler) as std::sync::Arc<dyn Scheduler>,
        std::sync::Arc::new(RoundRobinScheduler),
        std::sync::Arc::new(CostAwareScheduler),
    ] {
        let config = IntraConfig::paper().with_scheduler(scheduler);
        let report = run_cluster(&ClusterConfig::ideal(2), move |proc| {
            let mut rt = make_rt(
                proc,
                ExecutionMode::IntraParallel { degree: 2 },
                config.clone(),
            );
            let mut ws = Workspace::new();
            let x = ws.add("x", (0..n).map(|i| i as f64).collect());
            let y = ws.add("y", vec![1.0; n]);
            let w = ws.add_zeros("w", n);
            let _ = waxpby_section(&mut rt, &mut ws, x, y, w, 1.0, 2.0, n);
            ws.get(w).to_vec()
        });
        let results = report.unwrap_results();
        let expected: Vec<f64> = (0..n).map(|i| i as f64 + 2.0).collect();
        assert_eq!(results[0], expected);
        assert_eq!(results[1], expected);
    }
}

#[test]
fn paper_api_reproduces_the_figure_4_waxpby() {
    // The intra-parallelized waxpby of Figure 4, written through the
    // paper-style register/launch shim.
    let n = 80;
    let ntasks = 8;
    let report = run_cluster(&ClusterConfig::ideal(2), move |proc| {
        let mut rt = make_rt(
            proc,
            ExecutionMode::IntraParallel { degree: 2 },
            IntraConfig::paper(),
        );
        let mut ws = Workspace::new();
        let x = ws.add("x", (0..n).map(|i| i as f64).collect());
        let y = ws.add("y", (0..n).map(|i| (n - i) as f64).collect());
        let w = ws.add_zeros("w", n);

        // WAXPBY(n, alpha, x, beta, y, w) from Figure 4, through the typed
        // handle API: the three-argument arity is part of the handle's type.
        let mut session = IntraSession::begin(rt.section(&mut ws));
        let task = session.register(
            "task_function",
            [ArgTag::In, ArgTag::In, ArgTag::Out],
            |ctx| {
                let tsize = ctx.scalar_usize(0);
                let alpha = ctx.scalars[1];
                let beta = ctx.scalars[2];
                for i in 0..tsize {
                    ctx.outputs[0][i] = alpha * ctx.inputs[0][i] + beta * ctx.inputs[1][i];
                }
            },
        );
        let tsize = n / ntasks;
        for i in 0..ntasks {
            let lo = i * tsize;
            let hi = lo + tsize;
            session
                .launch(
                    task,
                    [(x, lo..hi), (y, lo..hi), (w, lo..hi)],
                    vec![tsize as f64, 2.0, 1.0],
                    (),
                )
                .unwrap();
        }
        let _ = session.end().unwrap();
        ws.get(w).to_vec()
    });
    let results = report.unwrap_results();
    let expected: Vec<f64> = (0..n).map(|i| 2.0 * i as f64 + (n - i) as f64).collect();
    assert_eq!(results[0], expected);
    assert_eq!(results[1], expected);
}

#[test]
fn update_drain_time_is_visible_with_a_realistic_network() {
    // With a realistic network model and a waxpby-sized update, the section
    // report must attribute some time to draining updates.
    let n = 4096;
    let config = ClusterConfig::new(2)
        .with_machine(simcluster::MachineModel::ideal_compute_ib20g())
        .with_topology(simcluster::Topology::one_per_node(2));
    let report = run_cluster(&config, move |proc| {
        let mut rt = make_rt(
            proc,
            ExecutionMode::IntraParallel { degree: 2 },
            IntraConfig::paper(),
        );
        let mut ws = Workspace::new();
        let x = ws.add("x", vec![1.0; n]);
        let y = ws.add("y", vec![1.0; n]);
        let w = ws.add_zeros("w", n);
        let sec = waxpby_section(&mut rt, &mut ws, x, y, w, 1.0, 1.0, n);
        (
            sec.update_drain_time().as_secs(),
            sec.total_time().as_secs(),
        )
    });
    for (drain, total) in report.unwrap_results() {
        assert!(drain > 0.0, "update drain time must be positive");
        assert!(total >= drain);
    }
}

#[test]
fn task_resizing_output_is_rejected() {
    let report = run_cluster(&ClusterConfig::ideal(2), |proc| {
        let mut rt = make_rt(
            proc,
            ExecutionMode::IntraParallel { degree: 2 },
            IntraConfig::paper(),
        );
        let mut ws = Workspace::new();
        let w = ws.add_zeros("w", 8);
        let mut section = rt.section(&mut ws);
        section
            .add_task(TaskDef::new(
                "bad",
                |ctx| {
                    ctx.outputs[0].push(1.0);
                },
                vec![ArgSpec::output(w, 0..8)],
            ))
            .unwrap();
        section.end().is_err()
    });
    assert!(report.unwrap_results().into_iter().all(|x| x));
}

#[test]
fn invalid_ranges_are_rejected_at_launch() {
    let report = run_cluster(&ClusterConfig::ideal(1), |proc| {
        let mut rt = make_rt(proc, ExecutionMode::Native, IntraConfig::paper());
        let mut ws = Workspace::new();
        let x = ws.add("x", vec![0.0; 4]);
        let mut section = rt.section(&mut ws);
        let err = section.add_task(TaskDef::new("oob", |_| {}, vec![ArgSpec::input(x, 0..5)]));
        err.is_err()
    });
    assert!(report.unwrap_results()[0]);
}
