//! The intra-parallelization runtime owned by one physical process.

use crate::cost::{CostModel, DEFAULT_EMA_ALPHA};
use crate::report::RuntimeReport;
use crate::sched::{Scheduler, SchedulerKind, StaticBlockScheduler};
use crate::section::Section;
use crate::workspace::Workspace;
use replication::ReplicatedEnv;
use std::sync::Arc;

/// Configuration of the intra-parallelization runtime.
#[derive(Clone)]
#[must_use = "IntraConfig is a builder: apply it to an IntraRuntime (or pass it on) to take effect"]
pub struct IntraConfig {
    /// Default number of tasks per section used by the convenience helpers
    /// that split a kernel automatically (`Section::add_split_task`, the
    /// paper-style API).  The paper uses 8 tasks per section (4 per replica)
    /// for all its experiments.
    pub tasks_per_section: usize,
    /// Scale factor applied to update sizes and `inout` snapshot sizes when
    /// charging the network/memory model.  Used by paper-scale experiments
    /// that run the protocol on reduced actual arrays (see DESIGN.md); 1.0
    /// means "charge exactly what is really transferred".
    pub modeled_scale: f64,
    /// Whether to charge modeled task compute costs to the virtual clock.
    pub charge_costs: bool,
    /// Scheduler deciding which replica executes which task.
    pub scheduler: Arc<dyn Scheduler>,
    /// Smoothing factor of the measured-cost EMA history fed to schedulers
    /// that ask for measured weights (see
    /// [`crate::sched::Scheduler::wants_measured_weights`]).
    pub cost_ema_alpha: f64,
}

impl std::fmt::Debug for IntraConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntraConfig")
            .field("tasks_per_section", &self.tasks_per_section)
            .field("modeled_scale", &self.modeled_scale)
            .field("charge_costs", &self.charge_costs)
            .field("scheduler", &self.scheduler.name())
            .field("cost_ema_alpha", &self.cost_ema_alpha)
            .finish()
    }
}

impl Default for IntraConfig {
    fn default() -> Self {
        IntraConfig {
            tasks_per_section: 8,
            modeled_scale: 1.0,
            charge_costs: true,
            scheduler: Arc::new(StaticBlockScheduler),
            cost_ema_alpha: DEFAULT_EMA_ALPHA,
        }
    }
}

impl IntraConfig {
    /// The paper's configuration: 8 tasks per section, static block
    /// scheduling.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Sets the number of tasks per section.
    pub fn with_tasks_per_section(mut self, n: usize) -> Self {
        self.tasks_per_section = n.max(1);
        self
    }

    /// Sets the modeled-size scale factor.
    pub fn with_modeled_scale(mut self, scale: f64) -> Self {
        self.modeled_scale = if scale.is_finite() && scale > 0.0 {
            scale
        } else {
            1.0
        };
        self
    }

    /// Enables or disables charging modeled compute costs.
    pub fn with_charge_costs(mut self, charge: bool) -> Self {
        self.charge_costs = charge;
        self
    }

    /// Sets the scheduler.
    pub fn with_scheduler(mut self, scheduler: Arc<dyn Scheduler>) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the scheduler from its typed [`SchedulerKind`] — the
    /// scheduler-selection knob of the `Experiment` builder, the app drivers
    /// and the bench harness.  Infallible: an invalid scheduler cannot be
    /// expressed.
    ///
    /// ```
    /// use ipr_core::{IntraConfig, SchedulerKind};
    ///
    /// let config = IntraConfig::paper().with_scheduler_kind(SchedulerKind::Adaptive);
    /// assert_eq!(config.scheduler.name(), "adaptive");
    /// ```
    pub fn with_scheduler_kind(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind.scheduler();
        self
    }

    /// Sets the smoothing factor of the measured-cost EMA (clamped to
    /// `(0, 1]` by the cost model).
    pub fn with_cost_ema_alpha(mut self, alpha: f64) -> Self {
        self.cost_ema_alpha = alpha;
        self
    }
}

/// The per-physical-process intra-parallelization runtime.
///
/// One `IntraRuntime` is created per physical process (replica).  It hands
/// out [`Section`]s, executes the work-sharing protocol when a section ends,
/// and accumulates per-section metrics.
pub struct IntraRuntime {
    env: ReplicatedEnv,
    config: IntraConfig,
    section_count: usize,
    report: RuntimeReport,
    cost_model: CostModel,
}

impl IntraRuntime {
    /// Creates the runtime for this physical process.
    pub fn new(env: ReplicatedEnv, config: IntraConfig) -> Self {
        let cost_model = CostModel::new(config.cost_ema_alpha);
        IntraRuntime {
            env,
            config,
            section_count: 0,
            report: RuntimeReport::default(),
            cost_model,
        }
    }

    /// The replication environment of this process.
    pub fn env(&self) -> &ReplicatedEnv {
        &self.env
    }

    /// The runtime configuration.
    pub fn config(&self) -> &IntraConfig {
        &self.config
    }

    /// Opens a new intra-parallel section over `workspace`
    /// (`Intra_Section_begin` in the paper's API).
    pub fn section<'a>(&'a mut self, workspace: &'a mut Workspace) -> Section<'a> {
        Section::new(self, workspace)
    }

    /// Number of sections executed so far.
    pub fn sections_executed(&self) -> usize {
        self.section_count
    }

    /// Accumulated per-section metrics.
    pub fn report(&self) -> &RuntimeReport {
        &self.report
    }

    /// The measured-cost history learned from the sections executed so far.
    ///
    /// Keyed by interned task instance ([`crate::cost::TaskKey`]); fed one
    /// observation per task of every recorded section (see
    /// [`crate::report::TaskCostSample`] for why the stream is identical on
    /// every replica).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Mutable access to the cost history (e.g. to reset it between
    /// measured regions).  Mutating it identically on every replica is the
    /// caller's responsibility — the assignment of tasks to replicas is
    /// derived from this state.
    pub fn cost_model_mut(&mut self) -> &mut CostModel {
        &mut self.cost_model
    }

    pub(crate) fn next_section_index(&mut self) -> usize {
        let idx = self.section_count;
        self.section_count += 1;
        idx
    }

    pub(crate) fn record(&mut self, report: crate::report::SectionReport) {
        // Fold the section's per-task costs into the EMA history, in task
        // order (the order is part of the replica-determinism contract —
        // including the first-sighting order of interned names).
        for sample in &report.task_costs {
            let key = self
                .cost_model
                .key_for(&sample.name, sample.occurrence as usize);
            self.cost_model.observe_key(key, sample.observed_seconds);
        }
        self.report.push(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_the_paper() {
        let c = IntraConfig::paper();
        assert_eq!(c.tasks_per_section, 8);
        assert_eq!(c.modeled_scale, 1.0);
        assert!(c.charge_costs);
        assert_eq!(c.scheduler.name(), "static-block");
        assert_eq!(c.cost_ema_alpha, DEFAULT_EMA_ALPHA);
    }

    #[test]
    fn scheduler_kind_builder_sets_every_builtin() {
        for kind in SchedulerKind::ALL {
            let c = IntraConfig::paper().with_scheduler_kind(kind);
            assert_eq!(c.scheduler.name(), kind.name());
        }
    }

    #[test]
    fn builders_clamp_invalid_values() {
        let c = IntraConfig::default()
            .with_tasks_per_section(0)
            .with_modeled_scale(-3.0);
        assert_eq!(c.tasks_per_section, 1);
        assert_eq!(c.modeled_scale, 1.0);
        let c = c.with_modeled_scale(64.0).with_charge_costs(false);
        assert_eq!(c.modeled_scale, 64.0);
        assert!(!c.charge_costs);
    }

    #[test]
    fn debug_impl_shows_scheduler_name() {
        let c = IntraConfig::default();
        assert!(format!("{c:?}").contains("static-block"));
    }
}
