//! Error type of the intra-parallelization runtime.

use simmpi::MpiError;
use std::fmt;

/// Errors surfaced by the intra-parallelization runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntraError {
    /// An underlying MPI operation failed for a reason other than a peer
    /// crash the protocol can recover from.
    Mpi(MpiError),
    /// The local process crashed (through failure injection); the caller
    /// must stop doing any work.  The death of *every peer* replica, by
    /// contrast, surfaces as `Mpi(ProcessFailed)` from the logical channel's
    /// stream failover.
    Crashed,
    /// A task definition is inconsistent (bad variable id, range out of
    /// bounds, argument/tag mismatch, …).
    InvalidTask(String),
    /// A workspace variable id or range was invalid.
    InvalidVariable(String),
    /// A runtime configuration value was invalid (e.g. an unknown or empty
    /// scheduler name parsed into a [`crate::sched::SchedulerKind`]).
    InvalidConfig(String),
}

impl fmt::Display for IntraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntraError::Mpi(e) => write!(f, "MPI error: {e}"),
            IntraError::Crashed => write!(f, "local replica has crashed"),
            IntraError::InvalidTask(msg) => write!(f, "invalid task: {msg}"),
            IntraError::InvalidVariable(msg) => write!(f, "invalid workspace variable: {msg}"),
            IntraError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for IntraError {}

impl From<MpiError> for IntraError {
    fn from(e: MpiError) -> Self {
        match e {
            MpiError::SelfFailed => IntraError::Crashed,
            other => IntraError::Mpi(other),
        }
    }
}

/// Result alias for intra-parallelization operations.
pub type IntraResult<T> = Result<T, IntraError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_failed_maps_to_crashed() {
        assert_eq!(IntraError::from(MpiError::SelfFailed), IntraError::Crashed);
        assert_eq!(
            IntraError::from(MpiError::Aborted),
            IntraError::Mpi(MpiError::Aborted)
        );
    }

    #[test]
    fn display_is_informative() {
        assert!(IntraError::Crashed.to_string().contains("crashed"));
        assert!(IntraError::InvalidTask("x".into())
            .to_string()
            .contains('x'));
        assert!(IntraError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
    }
}
