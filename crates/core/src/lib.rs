//! # ipr-core — intra-parallelization for replicated MPI processes
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Ropars, Lefray, Kim, Schiper, *"Efficient Process Replication for MPI
//! Applications: Sharing Work Between Replicas"*, IPDPS 2015): a runtime that
//! lets the replicas of a logical MPI process **share** the computation of
//! designated code sections instead of executing all of it redundantly,
//! breaking the 50 %-efficiency wall of classic state-machine replication
//! while preserving crash-stop fault tolerance.
//!
//! ## Concepts (Section III of the paper)
//!
//! * a [`workspace::Workspace`] holds the replicated variables (identical on
//!   every replica outside sections);
//! * an intra-parallel [`section::Section`] is a block with no message
//!   passing, divided into [`task::TaskDef`]s whose arguments carry
//!   `in`/`out`/`inout` tags;
//! * at `Section::end`, a deterministic [`sched::Scheduler`] splits the tasks
//!   among the alive replicas; every replica executes its share, ships the
//!   written ranges to its peers (overlapping transfers with the remaining
//!   computation) and applies the peers' updates, so all replicas are
//!   consistent again when the section returns;
//! * if a replica crashes, its unfinished tasks are re-executed by the
//!   survivors; `inout` ranges are snapshotted at launch time so
//!   re-execution after a partial update is safe (Figure 2 of the paper).
//!
//! ## Quick example
//!
//! ```
//! use ipr_core::prelude::*;
//! use replication::{ExecutionMode, ReplicatedEnv};
//! use simmpi::{run_cluster, ClusterConfig};
//!
//! // Two physical processes = two replicas of one logical process.
//! let report = run_cluster(&ClusterConfig::ideal(2), |proc| {
//!     let env = ReplicatedEnv::without_failures(
//!         proc, ExecutionMode::IntraParallel { degree: 2 }).unwrap();
//!     let mut rt = IntraRuntime::new(env, IntraConfig::paper());
//!     let mut ws = Workspace::new();
//!     let x = ws.add("x", (0..64).map(|i| i as f64).collect());
//!     let w = ws.add_zeros("w", 64);
//!
//!     let mut section = rt.section(&mut ws);
//!     section.add_split(64, |chunk| {
//!         TaskDef::new("double", |ctx| {
//!             for i in 0..ctx.inputs[0].len() {
//!                 ctx.outputs[0][i] = 2.0 * ctx.inputs[0][i];
//!             }
//!         }, vec![ArgSpec::input(x, chunk.clone()), ArgSpec::output(w, chunk)])
//!     }).unwrap();
//!     section.end().unwrap();
//!
//!     // Both replicas now hold the full result even though each computed
//!     // only half of it.
//!     ws.get(w).iter().sum::<f64>()
//! });
//! for sum in report.unwrap_results() {
//!     assert_eq!(sum, 2.0 * (0..64).sum::<i64>() as f64);
//! }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod api;
pub mod cost;
pub mod error;
pub mod report;
pub mod runtime;
pub mod sched;
pub mod section;
pub mod task;
pub mod workspace;

pub use api::{IntraSession, TaskHandle};
pub use cost::{CostEstimate, CostModel, TaskKey, DEFAULT_EMA_ALPHA};
pub use error::{IntraError, IntraResult};
pub use report::{RuntimeReport, SectionReport, SectionsView, TaskCostSample};
pub use runtime::{IntraConfig, IntraRuntime};
#[allow(deprecated)]
pub use sched::{
    assignment_makespan, AdaptiveScheduler, CostAwareScheduler, LocalityAwareScheduler,
    RoundRobinScheduler, Scheduler, SchedulerKind, SchedulerRegistry, StaticBlockScheduler,
};
pub use section::{split_ranges, Section, MAX_ARGS_PER_TASK, MAX_TASKS_PER_SECTION};
pub use task::{ArgSpec, ArgTag, CostHint, TaskCost, TaskCtx, TaskDef, TaskFn};
pub use workspace::{VarId, Workspace};

/// Convenience re-exports for application code.
pub mod prelude {
    pub use crate::api::{IntraSession, TaskHandle};
    pub use crate::cost::{CostEstimate, CostModel};
    pub use crate::error::{IntraError, IntraResult};
    pub use crate::report::{RuntimeReport, SectionReport, SectionsView, TaskCostSample};
    pub use crate::runtime::{IntraConfig, IntraRuntime};
    pub use crate::sched::{
        AdaptiveScheduler, CostAwareScheduler, LocalityAwareScheduler, RoundRobinScheduler,
        Scheduler, SchedulerKind, SchedulerRegistry, StaticBlockScheduler,
    };
    pub use crate::section::{split_ranges, Section};
    pub use crate::task::{ArgSpec, ArgTag, CostHint, TaskCost, TaskCtx, TaskDef};
    pub use crate::workspace::{VarId, Workspace};
}
