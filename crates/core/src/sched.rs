//! Task schedulers: deciding which replica executes which task.
//!
//! The paper's prototype uses a simple static strategy ("the N/2 first
//! launched tasks of a section are executed by replica 1 and the N/2 last
//! ones are executed by replica 2") and notes that more elaborate strategies
//! could be designed.  [`StaticBlockScheduler`] is that strategy;
//! [`RoundRobinScheduler`] and [`CostAwareScheduler`] are the obvious
//! alternatives, compared in the `ABL-SCHED` ablation.
//!
//! A scheduler is a pure function of the task weights and the set of alive
//! replicas, so all replicas of a logical process independently compute the
//! same assignment — no coordination messages are needed, which is what
//! makes failure-driven rescheduling (Algorithm 1, line 24) cheap.

/// Assigns every task of a section to one alive replica.
pub trait Scheduler: Send + Sync {
    /// Returns, for each task weight in `task_weights`, the replica id (an
    /// element of `alive_replicas`) that must execute it.
    ///
    /// `alive_replicas` is never empty and is sorted in increasing order.
    fn assign(&self, task_weights: &[f64], alive_replicas: &[usize]) -> Vec<usize>;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's static block scheduler: the first `N/k` tasks go to the first
/// alive replica, the next block to the second, and so on.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticBlockScheduler;

impl Scheduler for StaticBlockScheduler {
    fn assign(&self, task_weights: &[f64], alive_replicas: &[usize]) -> Vec<usize> {
        let n = task_weights.len();
        let k = alive_replicas.len();
        let mut out = Vec::with_capacity(n);
        if n == 0 {
            return out;
        }
        // Block sizes differ by at most one (ceil for the first `n % k`
        // blocks), matching the N/2-first / N/2-last split of the paper.
        let base = n / k;
        let extra = n % k;
        let mut task = 0usize;
        for (i, &replica) in alive_replicas.iter().enumerate() {
            let count = base + usize::from(i < extra);
            for _ in 0..count {
                out.push(replica);
                task += 1;
            }
        }
        debug_assert_eq!(task, n);
        out
    }

    fn name(&self) -> &'static str {
        "static-block"
    }
}

/// Round-robin assignment: task `i` goes to alive replica `i % k`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinScheduler;

impl Scheduler for RoundRobinScheduler {
    fn assign(&self, task_weights: &[f64], alive_replicas: &[usize]) -> Vec<usize> {
        let k = alive_replicas.len();
        (0..task_weights.len())
            .map(|i| alive_replicas[i % k])
            .collect()
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Greedy longest-processing-time assignment balancing the task weights
/// across replicas (useful when tasks are heterogeneous).
#[derive(Debug, Clone, Copy, Default)]
pub struct CostAwareScheduler;

impl Scheduler for CostAwareScheduler {
    fn assign(&self, task_weights: &[f64], alive_replicas: &[usize]) -> Vec<usize> {
        let k = alive_replicas.len();
        let mut load = vec![0.0f64; k];
        // Sort task indices by decreasing weight, assign each to the least
        // loaded replica; ties broken by task index so the assignment is
        // deterministic across replicas.
        let mut order: Vec<usize> = (0..task_weights.len()).collect();
        order.sort_by(|&a, &b| {
            task_weights[b]
                .partial_cmp(&task_weights[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut out = vec![alive_replicas[0]; task_weights.len()];
        for &t in &order {
            let (slot, _) = load
                .iter()
                .enumerate()
                .min_by(|(ia, a), (ib, b)| {
                    a.partial_cmp(b)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(ia.cmp(ib))
                })
                .expect("at least one replica");
            load[slot] += task_weights[t];
            out[t] = alive_replicas[slot];
        }
        out
    }

    fn name(&self) -> &'static str {
        "cost-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn static_block_splits_in_halves_for_degree_two() {
        // The paper's configuration: 8 tasks per section, 2 replicas.
        let s = StaticBlockScheduler;
        let a = s.assign(&[1.0; 8], &[0, 1]);
        assert_eq!(a, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(s.name(), "static-block");
    }

    #[test]
    fn static_block_handles_remainders_and_single_replica() {
        let s = StaticBlockScheduler;
        assert_eq!(s.assign(&[1.0; 5], &[0, 1]), vec![0, 0, 0, 1, 1]);
        assert_eq!(s.assign(&[1.0; 3], &[1]), vec![1, 1, 1]);
        assert_eq!(s.assign(&[], &[0, 1]), Vec::<usize>::new());
    }

    #[test]
    fn static_block_uses_surviving_replica_ids() {
        // After replica 0 failed, everything must go to replica 1.
        let s = StaticBlockScheduler;
        assert_eq!(s.assign(&[1.0; 4], &[1]), vec![1; 4]);
    }

    #[test]
    fn round_robin_alternates() {
        let s = RoundRobinScheduler;
        assert_eq!(s.assign(&[1.0; 5], &[0, 1]), vec![0, 1, 0, 1, 0]);
        assert_eq!(s.name(), "round-robin");
    }

    #[test]
    fn cost_aware_balances_heterogeneous_tasks() {
        let s = CostAwareScheduler;
        // Weights 8, 1, 1, 1, 1, 1, 1, 1, 1: the heavy task goes alone.
        let weights = [8.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let a = s.assign(&weights, &[0, 1]);
        let load0: f64 = weights
            .iter()
            .zip(&a)
            .filter(|(_, &r)| r == 0)
            .map(|(w, _)| w)
            .sum();
        let load1: f64 = weights
            .iter()
            .zip(&a)
            .filter(|(_, &r)| r == 1)
            .map(|(w, _)| w)
            .sum();
        assert!((load0 - load1).abs() <= 1.0, "loads {load0} vs {load1}");
        assert_eq!(s.name(), "cost-aware");
    }

    #[test]
    fn schedulers_are_deterministic() {
        let weights = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        for s in [
            &StaticBlockScheduler as &dyn Scheduler,
            &RoundRobinScheduler,
            &CostAwareScheduler,
        ] {
            assert_eq!(s.assign(&weights, &[0, 1]), s.assign(&weights, &[0, 1]));
        }
    }

    proptest! {
        #[test]
        fn every_task_is_assigned_to_an_alive_replica(
            weights in proptest::collection::vec(0.1f64..100.0, 0..64),
            alive_mask in 1u8..7,
        ) {
            let alive: Vec<usize> = (0..3).filter(|i| alive_mask & (1 << i) != 0).collect();
            for s in [
                &StaticBlockScheduler as &dyn Scheduler,
                &RoundRobinScheduler,
                &CostAwareScheduler,
            ] {
                let a = s.assign(&weights, &alive);
                prop_assert_eq!(a.len(), weights.len());
                for r in &a {
                    prop_assert!(alive.contains(r), "{} assigned to dead replica {}", s.name(), r);
                }
            }
        }

        #[test]
        fn static_block_is_contiguous(n in 0usize..64) {
            let a = StaticBlockScheduler.assign(&vec![1.0; n], &[0, 1, 2]);
            // Once the replica id increases it never goes back down.
            for w in a.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }
}
