//! Task schedulers: deciding which replica executes which task.
//!
//! The paper's prototype uses a simple static strategy ("the N/2 first
//! launched tasks of a section are executed by replica 1 and the N/2 last
//! ones are executed by replica 2") and notes that more elaborate strategies
//! could be designed.  [`StaticBlockScheduler`] is that strategy;
//! [`RoundRobinScheduler`] and [`CostAwareScheduler`] are the obvious
//! alternatives, compared in the `ABL-SCHED` ablation; and
//! [`AdaptiveScheduler`] / [`LocalityAwareScheduler`] are the "more
//! elaborate" designs: the former schedules from *measured* execution times
//! learned across section instances (see [`crate::cost::CostModel`]), the
//! latter keeps assignments contiguous and stable across iterations.
//! [`SchedulerKind`] is the typed selection knob for the five built-ins
//! (CLIs parse it from strings at the edge with `FromStr`), and
//! [`SchedulerRegistry`] remains the extension point for custom scheduler
//! implementations that need name-based lookup.
//!
//! A scheduler is a pure function of the task weights and the set of alive
//! replicas, so all replicas of a logical process independently compute the
//! same assignment — no coordination messages are needed, which is what
//! makes failure-driven rescheduling (Algorithm 1, line 24) cheap.

use crate::error::{IntraError, IntraResult};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Assigns every task of a section to one alive replica.
pub trait Scheduler: Send + Sync {
    /// Returns, for each task weight in `task_weights`, the replica id (an
    /// element of `alive_replicas`) that must execute it.
    ///
    /// `alive_replicas` is never empty and is sorted in increasing order.
    fn assign(&self, task_weights: &[f64], alive_replicas: &[usize]) -> Vec<usize>;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// True if the runtime should hand this scheduler *measured* task
    /// weights (the learned execution times of [`crate::cost::CostModel`],
    /// falling back to the declared weight for tasks without history)
    /// instead of the declared weights.
    ///
    /// The default is `false`, which preserves the paper's behaviour for the
    /// three classic schedulers.
    fn wants_measured_weights(&self) -> bool {
        false
    }
}

/// Greedy longest-processing-time list scheduling: sort task indices by
/// decreasing weight and give each to the currently least-loaded replica.
/// Ties (both in task weight and in replica load) are broken by index so the
/// result is deterministic across replicas.
fn lpt_assign(task_weights: &[f64], alive_replicas: &[usize]) -> Vec<usize> {
    let k = alive_replicas.len();
    let mut load = vec![0.0f64; k];
    let mut order: Vec<usize> = (0..task_weights.len()).collect();
    order.sort_by(|&a, &b| {
        task_weights[b]
            .partial_cmp(&task_weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut out = vec![alive_replicas[0]; task_weights.len()];
    for &t in &order {
        let (slot, _) = load
            .iter()
            .enumerate()
            .min_by(|(ia, a), (ib, b)| {
                a.partial_cmp(b)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ia.cmp(ib))
            })
            .expect("at least one replica");
        load[slot] += task_weights[t];
        out[t] = alive_replicas[slot];
    }
    out
}

/// The paper's static block scheduler: the first `N/k` tasks go to the first
/// alive replica, the next block to the second, and so on.
///
/// # Examples
///
/// ```
/// use ipr_core::{Scheduler, StaticBlockScheduler};
///
/// // The paper's split: 8 tasks, 2 replicas -> N/2 first / N/2 last.
/// let assignment = StaticBlockScheduler.assign(&[1.0; 8], &[0, 1]);
/// assert_eq!(assignment, vec![0, 0, 0, 0, 1, 1, 1, 1]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticBlockScheduler;

impl Scheduler for StaticBlockScheduler {
    fn assign(&self, task_weights: &[f64], alive_replicas: &[usize]) -> Vec<usize> {
        let n = task_weights.len();
        let k = alive_replicas.len();
        let mut out = Vec::with_capacity(n);
        if n == 0 {
            return out;
        }
        // Block sizes differ by at most one (ceil for the first `n % k`
        // blocks), matching the N/2-first / N/2-last split of the paper.
        let base = n / k;
        let extra = n % k;
        let mut task = 0usize;
        for (i, &replica) in alive_replicas.iter().enumerate() {
            let count = base + usize::from(i < extra);
            for _ in 0..count {
                out.push(replica);
                task += 1;
            }
        }
        debug_assert_eq!(task, n);
        out
    }

    fn name(&self) -> &'static str {
        "static-block"
    }
}

/// Round-robin assignment: task `i` goes to alive replica `i % k`.
///
/// # Examples
///
/// ```
/// use ipr_core::{RoundRobinScheduler, Scheduler};
///
/// let assignment = RoundRobinScheduler.assign(&[1.0; 5], &[0, 1]);
/// assert_eq!(assignment, vec![0, 1, 0, 1, 0]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinScheduler;

impl Scheduler for RoundRobinScheduler {
    fn assign(&self, task_weights: &[f64], alive_replicas: &[usize]) -> Vec<usize> {
        let k = alive_replicas.len();
        (0..task_weights.len())
            .map(|i| alive_replicas[i % k])
            .collect()
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Greedy longest-processing-time assignment balancing the *declared* task
/// weights across replicas (useful when tasks are heterogeneous).
///
/// # Examples
///
/// ```
/// use ipr_core::{CostAwareScheduler, Scheduler};
///
/// // One heavy task and four light ones: LPT isolates the heavy task.
/// let assignment = CostAwareScheduler.assign(&[8.0, 1.0, 1.0, 1.0, 1.0], &[0, 1]);
/// assert_eq!(assignment[0], 0);
/// assert!(assignment[1..].iter().all(|&r| r == 1));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CostAwareScheduler;

impl Scheduler for CostAwareScheduler {
    fn assign(&self, task_weights: &[f64], alive_replicas: &[usize]) -> Vec<usize> {
        lpt_assign(task_weights, alive_replicas)
    }

    fn name(&self) -> &'static str {
        "cost-aware"
    }
}

/// History-driven longest-processing-time scheduling: identical greedy LPT to
/// [`CostAwareScheduler`], but [`Scheduler::wants_measured_weights`] returns
/// `true`, so the runtime substitutes each task's *learned* execution time
/// (the [`crate::cost::CostModel`] EMA over previous section instances) for
/// its declared weight.
///
/// Declared weights mix units (flops vs bytes) and can mis-rank tasks whose
/// roofline bottlenecks differ; measured virtual-time durations cannot.  On
/// the first instance of a section no history exists yet, every task falls
/// back to its declared weight, and the scheduler behaves exactly like
/// [`CostAwareScheduler`] — one warm-up iteration later the assignment is
/// driven by measured costs (see the `ABL-ADAPT` ablation and
/// `examples/adaptive_sched.rs`).
///
/// # Examples
///
/// ```
/// use ipr_core::{AdaptiveScheduler, Scheduler};
///
/// let sched = AdaptiveScheduler;
/// assert!(sched.wants_measured_weights());
/// // Given (measured) weights, the assignment is plain LPT:
/// let assignment = sched.assign(&[8.0, 7.0, 2.0, 1.0], &[0, 1]);
/// assert_eq!(assignment, vec![0, 1, 1, 0]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptiveScheduler;

impl Scheduler for AdaptiveScheduler {
    fn assign(&self, task_weights: &[f64], alive_replicas: &[usize]) -> Vec<usize> {
        lpt_assign(task_weights, alive_replicas)
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn wants_measured_weights(&self) -> bool {
        true
    }
}

/// Weight-balanced *contiguous* partitioning: replica `j` receives a
/// contiguous run of tasks whose cumulative weight is as close as possible
/// to `j/k .. (j+1)/k` of the total.
///
/// Two properties distinguish it from greedy LPT:
///
/// * **locality** — each replica owns one contiguous task range, so the
///   `out`/`inout` ranges it ships form as few contiguous runs per variable
///   as possible (tasks produced by [`crate::section::split_ranges`] write
///   adjacent ranges), which is what an implementation that coalesces update
///   messages wants;
/// * **stickiness** — the split point moves only when the weight *profile*
///   moves, so across iterations of a section with stable (or slowly
///   drifting) weights every task keeps its owner, whereas LPT can permute
///   ownership on the smallest weight perturbation.  Stable ownership means
///   iteration `i+1` re-reads the ranges replica `j` already produced in
///   iteration `i` from local memory, not from a differently shaped peer
///   update.
///
/// # Examples
///
/// ```
/// use ipr_core::{LocalityAwareScheduler, Scheduler};
///
/// // A weight gradient: the contiguous split is 4 light tasks / 2 heavy.
/// let weights = [1.0, 1.0, 1.0, 1.0, 2.0, 2.0];
/// let assignment = LocalityAwareScheduler.assign(&weights, &[0, 1]);
/// assert_eq!(assignment, vec![0, 0, 0, 0, 1, 1]);
/// // Contiguity: the replica id never decreases along the task list.
/// assert!(assignment.windows(2).all(|w| w[0] <= w[1]));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalityAwareScheduler;

impl Scheduler for LocalityAwareScheduler {
    fn assign(&self, task_weights: &[f64], alive_replicas: &[usize]) -> Vec<usize> {
        let n = task_weights.len();
        let k = alive_replicas.len();
        let total: f64 = task_weights.iter().filter(|w| w.is_finite()).sum();
        if n == 0 {
            return Vec::new();
        }
        if total <= 0.0 || total.is_nan() || k == 1 {
            // Degenerate weights: fall back to the paper's static block
            // split, which is contiguous and balanced by task count.
            return StaticBlockScheduler.assign(task_weights, alive_replicas);
        }
        // Place each task by the midpoint of its weight interval within the
        // cumulative profile: task t covering [prefix, prefix + w) goes to
        // the replica whose share of the total contains prefix + w/2.  The
        // midpoint is monotonically increasing, so the assignment is
        // contiguous by construction.
        let mut out = Vec::with_capacity(n);
        let mut prefix = 0.0f64;
        for &w in task_weights {
            let w = if w.is_finite() && w > 0.0 { w } else { 0.0 };
            let mid = prefix + w * 0.5;
            let slot = ((mid / total) * k as f64).floor() as usize;
            out.push(alive_replicas[slot.min(k - 1)]);
            prefix += w;
        }
        out
    }

    fn name(&self) -> &'static str {
        "locality"
    }
}

/// Typed identifier of one built-in scheduler: the scheduler-selection knob
/// of [`crate::runtime::IntraConfig`], the `Experiment` builder of the root
/// facade and the campaign grids.
///
/// Strings exist only at the edges: CLIs parse their arguments with
/// [`FromStr`] and reports render the kind with [`fmt::Display`]; everything
/// in between carries the enum, so an unknown or misspelled scheduler can
/// only be constructed where user input enters the program.
///
/// # Examples
///
/// ```
/// use ipr_core::SchedulerKind;
///
/// let kind: SchedulerKind = "adaptive".parse().unwrap();
/// assert_eq!(kind, SchedulerKind::Adaptive);
/// assert_eq!(kind.to_string(), "adaptive");
/// assert_eq!(kind.scheduler().name(), "adaptive");
/// // Surrounding whitespace is trimmed; empty names are rejected.
/// assert_eq!("  locality ".parse(), Ok(SchedulerKind::Locality));
/// assert!("".parse::<SchedulerKind>().is_err());
/// assert!("bogus".parse::<SchedulerKind>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// The paper's static block split ([`StaticBlockScheduler`]).
    StaticBlock,
    /// Round-robin assignment ([`RoundRobinScheduler`]).
    RoundRobin,
    /// Declared-weight LPT ([`CostAwareScheduler`]).
    CostAware,
    /// Measured-weight LPT ([`AdaptiveScheduler`]).
    Adaptive,
    /// Sticky weight-balanced contiguous split ([`LocalityAwareScheduler`]).
    Locality,
}

impl SchedulerKind {
    /// Every built-in scheduler, in documentation order.
    pub const ALL: [SchedulerKind; 5] = [
        SchedulerKind::StaticBlock,
        SchedulerKind::RoundRobin,
        SchedulerKind::CostAware,
        SchedulerKind::Adaptive,
        SchedulerKind::Locality,
    ];

    /// Stable name, identical to [`Scheduler::name`] of the instance.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::StaticBlock => "static-block",
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::CostAware => "cost-aware",
            SchedulerKind::Adaptive => "adaptive",
            SchedulerKind::Locality => "locality",
        }
    }

    /// Instantiates the scheduler this kind names.
    pub fn scheduler(self) -> Arc<dyn Scheduler> {
        match self {
            SchedulerKind::StaticBlock => Arc::new(StaticBlockScheduler),
            SchedulerKind::RoundRobin => Arc::new(RoundRobinScheduler),
            SchedulerKind::CostAware => Arc::new(CostAwareScheduler),
            SchedulerKind::Adaptive => Arc::new(AdaptiveScheduler),
            SchedulerKind::Locality => Arc::new(LocalityAwareScheduler),
        }
    }

    /// The names of every built-in scheduler, for error messages and CLI
    /// usage strings.
    pub fn names() -> Vec<&'static str> {
        SchedulerKind::ALL.iter().map(|k| k.name()).collect()
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SchedulerKind {
    type Err = IntraError;

    /// Parses a scheduler name, trimming surrounding whitespace.  Empty or
    /// unknown names yield [`IntraError::InvalidConfig`].
    fn from_str(s: &str) -> IntraResult<Self> {
        let name = s.trim();
        if name.is_empty() {
            return Err(IntraError::InvalidConfig(format!(
                "scheduler name is empty (available: {})",
                SchedulerKind::names().join(", ")
            )));
        }
        SchedulerKind::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| {
                IntraError::InvalidConfig(format!(
                    "unknown scheduler '{name}' (available: {})",
                    SchedulerKind::names().join(", ")
                ))
            })
    }
}

/// Name → scheduler registry: the extension point for *custom*
/// [`Scheduler`] implementations.
///
/// The built-in schedulers are selected with the typed [`SchedulerKind`]
/// enum; the registry remains for embedders that register their own
/// schedulers and need name-based lookup for them.
///
/// # Examples
///
/// ```
/// use ipr_core::SchedulerRegistry;
///
/// let registry = SchedulerRegistry::builtin();
/// assert_eq!(
///     registry.names(),
///     vec!["static-block", "round-robin", "cost-aware", "adaptive", "locality"]
/// );
/// let sched = registry.get("adaptive").expect("registered");
/// assert_eq!(sched.name(), "adaptive");
/// assert!(registry.get("no-such-scheduler").is_none());
/// ```
pub struct SchedulerRegistry {
    entries: Vec<Arc<dyn Scheduler>>,
}

impl SchedulerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SchedulerRegistry {
            entries: Vec::new(),
        }
    }

    /// The registry of the five built-in schedulers, in documentation order.
    pub fn builtin() -> Self {
        let mut r = SchedulerRegistry::new();
        r.register(Arc::new(StaticBlockScheduler));
        r.register(Arc::new(RoundRobinScheduler));
        r.register(Arc::new(CostAwareScheduler));
        r.register(Arc::new(AdaptiveScheduler));
        r.register(Arc::new(LocalityAwareScheduler));
        r
    }

    /// Registers a scheduler under its [`Scheduler::name`].  A scheduler
    /// with the same name replaces the previous entry.
    pub fn register(&mut self, scheduler: Arc<dyn Scheduler>) {
        if let Some(slot) = self
            .entries
            .iter_mut()
            .find(|e| e.name() == scheduler.name())
        {
            *slot = scheduler;
        } else {
            self.entries.push(scheduler);
        }
    }

    /// Looks a scheduler up by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Scheduler>> {
        self.entries
            .iter()
            .find(|e| e.name() == name)
            .map(Arc::clone)
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name()).collect()
    }
}

impl Default for SchedulerRegistry {
    fn default() -> Self {
        SchedulerRegistry::builtin()
    }
}

/// Makespan of an assignment: the maximum, over the replicas, of the summed
/// weights of the tasks assigned to that replica.  Used by the scheduler
/// tests and the `ABL-ADAPT` ablation.
pub fn assignment_makespan(task_weights: &[f64], assignment: &[usize]) -> f64 {
    debug_assert_eq!(task_weights.len(), assignment.len());
    let mut loads = std::collections::HashMap::new();
    for (w, &r) in task_weights.iter().zip(assignment) {
        *loads.entry(r).or_insert(0.0f64) += w;
    }
    loads.into_values().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_schedulers() -> Vec<Arc<dyn Scheduler>> {
        SchedulerKind::ALL
            .into_iter()
            .map(SchedulerKind::scheduler)
            .collect()
    }

    #[test]
    fn scheduler_kind_round_trips_names_and_instances() {
        for kind in SchedulerKind::ALL {
            assert_eq!(kind.name().parse::<SchedulerKind>(), Ok(kind));
            assert_eq!(kind.to_string(), kind.name());
            assert_eq!(kind.scheduler().name(), kind.name());
        }
        assert_eq!(SchedulerKind::names(), SchedulerRegistry::builtin().names());
    }

    #[test]
    fn scheduler_kind_parse_trims_and_rejects_empty_names() {
        assert_eq!(
            " static-block\t".parse::<SchedulerKind>(),
            Ok(SchedulerKind::StaticBlock)
        );
        for bad in ["", "   ", "\t"] {
            let err = bad.parse::<SchedulerKind>().unwrap_err();
            assert!(
                matches!(err, IntraError::InvalidConfig(_)),
                "{bad:?}: {err:?}"
            );
            assert!(err.to_string().contains("empty"), "{err}");
        }
        let err = "no-such".parse::<SchedulerKind>().unwrap_err();
        assert!(err.to_string().contains("no-such"), "{err}");
        assert!(err.to_string().contains("static-block"), "{err}");
    }

    #[test]
    fn static_block_splits_in_halves_for_degree_two() {
        // The paper's configuration: 8 tasks per section, 2 replicas.
        let s = StaticBlockScheduler;
        let a = s.assign(&[1.0; 8], &[0, 1]);
        assert_eq!(a, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(s.name(), "static-block");
    }

    #[test]
    fn static_block_handles_remainders_and_single_replica() {
        let s = StaticBlockScheduler;
        assert_eq!(s.assign(&[1.0; 5], &[0, 1]), vec![0, 0, 0, 1, 1]);
        assert_eq!(s.assign(&[1.0; 3], &[1]), vec![1, 1, 1]);
        assert_eq!(s.assign(&[], &[0, 1]), Vec::<usize>::new());
    }

    #[test]
    fn static_block_uses_surviving_replica_ids() {
        // After replica 0 failed, everything must go to replica 1.
        let s = StaticBlockScheduler;
        assert_eq!(s.assign(&[1.0; 4], &[1]), vec![1; 4]);
    }

    #[test]
    fn round_robin_alternates() {
        let s = RoundRobinScheduler;
        assert_eq!(s.assign(&[1.0; 5], &[0, 1]), vec![0, 1, 0, 1, 0]);
        assert_eq!(s.name(), "round-robin");
    }

    #[test]
    fn cost_aware_balances_heterogeneous_tasks() {
        let s = CostAwareScheduler;
        // Weights 8, 1, 1, 1, 1, 1, 1, 1, 1: the heavy task goes alone.
        let weights = [8.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let a = s.assign(&weights, &[0, 1]);
        let load0: f64 = weights
            .iter()
            .zip(&a)
            .filter(|(_, &r)| r == 0)
            .map(|(w, _)| w)
            .sum();
        let load1: f64 = weights
            .iter()
            .zip(&a)
            .filter(|(_, &r)| r == 1)
            .map(|(w, _)| w)
            .sum();
        assert!((load0 - load1).abs() <= 1.0, "loads {load0} vs {load1}");
        assert_eq!(s.name(), "cost-aware");
    }

    #[test]
    fn adaptive_is_lpt_and_wants_measured_weights() {
        let s = AdaptiveScheduler;
        assert!(s.wants_measured_weights());
        assert!(!CostAwareScheduler.wants_measured_weights());
        let weights = [8.0, 7.0, 2.0, 1.0];
        assert_eq!(s.assign(&weights, &[0, 1]), lpt_assign(&weights, &[0, 1]));
        assert_eq!(s.name(), "adaptive");
    }

    #[test]
    fn locality_is_contiguous_and_weight_balanced() {
        let s = LocalityAwareScheduler;
        // A strong gradient: the unweighted block split (3|3) would give
        // loads 3 vs 12; the weighted contiguous split must do better.
        let weights = [1.0, 1.0, 1.0, 4.0, 4.0, 4.0];
        let a = s.assign(&weights, &[0, 1]);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "not contiguous: {a:?}");
        let makespan = assignment_makespan(&weights, &a);
        let block = assignment_makespan(&weights, &StaticBlockScheduler.assign(&weights, &[0, 1]));
        assert!(makespan < block, "locality {makespan} vs block {block}");
        assert_eq!(s.name(), "locality");
    }

    #[test]
    fn locality_falls_back_to_block_on_degenerate_weights() {
        let s = LocalityAwareScheduler;
        assert_eq!(s.assign(&[0.0; 4], &[0, 1]), vec![0, 0, 1, 1]);
        assert_eq!(s.assign(&[], &[0, 1]), Vec::<usize>::new());
        assert_eq!(s.assign(&[1.0; 3], &[2]), vec![2, 2, 2]);
    }

    #[test]
    fn locality_is_sticky_under_small_perturbations() {
        // LPT permutes ownership when weights wiggle; the contiguous split
        // must not move for a 1 % perturbation of a stable profile.
        let s = LocalityAwareScheduler;
        let base = [2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0];
        let wiggled: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(i, w)| w * (1.0 + 0.01 * ((i % 3) as f64 - 1.0)))
            .collect();
        assert_eq!(s.assign(&base, &[0, 1]), s.assign(&wiggled, &[0, 1]));
    }

    #[test]
    fn registry_roundtrips_names() {
        let r = SchedulerRegistry::builtin();
        for name in r.names() {
            assert_eq!(r.get(name).unwrap().name(), name);
        }
        assert!(r.get("unknown").is_none());
        assert!(SchedulerKind::Locality.scheduler().name() == "locality");
        assert_eq!(SchedulerRegistry::default().names().len(), 5);
        assert!(SchedulerRegistry::new().names().is_empty());
    }

    #[test]
    fn registry_replaces_same_name_entries() {
        let mut r = SchedulerRegistry::new();
        r.register(Arc::new(StaticBlockScheduler));
        r.register(Arc::new(StaticBlockScheduler));
        assert_eq!(r.names(), vec!["static-block"]);
    }

    #[test]
    fn schedulers_are_deterministic() {
        let weights = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        for s in all_schedulers() {
            assert_eq!(s.assign(&weights, &[0, 1]), s.assign(&weights, &[0, 1]));
        }
    }

    proptest! {
        #[test]
        fn every_task_is_assigned_to_an_alive_replica(
            weights in proptest::collection::vec(0.1f64..100.0, 0..64),
            alive_mask in 1u8..7,
        ) {
            let alive: Vec<usize> = (0..3).filter(|i| alive_mask & (1 << i) != 0).collect();
            for s in all_schedulers() {
                let a = s.assign(&weights, &alive);
                prop_assert_eq!(a.len(), weights.len());
                for r in &a {
                    prop_assert!(alive.contains(r), "{} assigned to dead replica {}", s.name(), r);
                }
            }
        }

        #[test]
        fn static_block_is_contiguous(n in 0usize..64) {
            let a = StaticBlockScheduler.assign(&vec![1.0; n], &[0, 1, 2]);
            // Once the replica id increases it never goes back down.
            for w in a.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }

        #[test]
        fn locality_is_always_contiguous(
            weights in proptest::collection::vec(0.0f64..50.0, 0..64),
            alive_mask in 1u8..15,
        ) {
            let alive: Vec<usize> = (0..4).filter(|i| alive_mask & (1 << i) != 0).collect();
            let a = LocalityAwareScheduler.assign(&weights, &alive);
            // Map back to positions within `alive` to check monotonicity.
            let pos: Vec<usize> = a
                .iter()
                .map(|r| alive.iter().position(|x| x == r).unwrap())
                .collect();
            for w in pos.windows(2) {
                prop_assert!(w[0] <= w[1], "assignment not contiguous: {:?}", a);
            }
        }
    }
}
