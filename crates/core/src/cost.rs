//! Measured-cost history: the data the adaptive scheduler learns from.
//!
//! The paper's prototype schedules tasks from their *declared* weights (or,
//! with the static split, from nothing at all) and notes that "more elaborate
//! strategies could be designed".  The elaborate strategy implemented here
//! closes the loop: every executed section records the virtual-time duration
//! of each of its tasks ([`crate::report::TaskCostSample`]), the runtime
//! feeds those durations into an exponential-moving-average history keyed
//! per task instance (this module), and schedulers that opt in (see
//! [`crate::sched::Scheduler::wants_measured_weights`]) receive the learned
//! durations instead of the declared weights on the next instance of the
//! section.
//!
//! ## Key interning
//!
//! A task instance is identified by its name plus its occurrence index among
//! the same-named tasks of its section (HPCCG's `sparsemv` section is eight
//! identically named chunks; qualifying by occurrence lets each chunk learn
//! its own history).  The history is keyed by the interned form
//! [`TaskKey`] — `(u32 name id, u32 occurrence)` — so the per-section hot
//! path performs no string formatting or string hashing: names are interned
//! once, and every later section turns `(name, occurrence)` into a copyable
//! 8-byte key.  The human-readable `"name#occurrence"` spelling
//! ([`instance_key`]) remains as the display form, and the string-keyed
//! methods accept it for convenience (tests, diagnostics).
//!
//! ## Replica determinism
//!
//! Work-sharing correctness requires every replica to compute the *same*
//! assignment without exchanging messages, so the cost model must evolve
//! identically on all replicas.  This holds because the runtime feeds it one
//! observation per task of every executed section, in task order, where the
//! observation is the task's modeled execution time — a pure function of the
//! task's declared [`crate::task::TaskCost`] and the cluster-wide machine
//! model, identical no matter which replica actually ran the task (see
//! `observed_seconds` in [`crate::report::TaskCostSample`]).  No
//! wall-clock or per-replica state ever enters the model.  Name interning
//! preserves this: ids are assigned in first-sighting order, which is the
//! (replica-identical) task launch order.

use std::collections::HashMap;

/// Default smoothing factor of the exponential moving average.
pub const DEFAULT_EMA_ALPHA: f64 = 0.5;

/// Composes the human-readable history key of one task instance: the task
/// name qualified by the task's occurrence index among the same-named tasks
/// of its section (`"sparsemv#3"` is the fourth `sparsemv` task launched).
///
/// This is the display form; the model itself is keyed by the interned
/// [`TaskKey`].  The string-keyed [`CostModel`] methods parse this spelling
/// back into `(name, occurrence)`.
pub fn instance_key(name: &str, occurrence: usize) -> String {
    format!("{name}#{occurrence}")
}

/// Splits a `"name#occurrence"` display key back into its parts.  A key
/// without a parseable `#<digits>` suffix is treated as occurrence 0 of the
/// whole string.
fn split_display_key(key: &str) -> (&str, usize) {
    if let Some((name, occ)) = key.rsplit_once('#') {
        if let Ok(occurrence) = occ.parse::<usize>() {
            return (name, occurrence);
        }
    }
    (key, 0)
}

/// Interned identity of one task instance: `(name id, occurrence index)`.
///
/// Copyable and 8 bytes, so the scheduling hot path carries keys by value
/// instead of formatting and hashing strings.  Name ids are only meaningful
/// relative to the [`CostModel`] that interned them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskKey {
    /// Interned task-name id (see [`CostModel::intern_name`]).
    pub name_id: u32,
    /// Occurrence index of the name within its section (launch order).
    pub occurrence: u32,
}

/// One learned per-key cost estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Exponentially smoothed execution time in virtual seconds.
    pub seconds: f64,
    /// Number of observations folded into the estimate.
    pub samples: u64,
}

/// Exponential-moving-average history of measured task execution times,
/// keyed by interned task instance ([`TaskKey`]).
///
/// `mean ← α·sample + (1−α)·mean`, with the first observation initializing
/// the mean directly so a single iteration is enough to start scheduling
/// from measured costs.
///
/// # Examples
///
/// ```
/// use ipr_core::CostModel;
///
/// let mut model = CostModel::new(0.5);
/// model.observe("sparsemv", 0.25);
/// model.observe("sparsemv", 0.25);
/// assert_eq!(model.predict("sparsemv"), Some(0.25));
/// // Unknown names fall back to the declared weight.
/// assert_eq!(model.effective_weight("ddot", 42.0), 42.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    alpha: f64,
    /// Task-name interner; ids are assigned in first-sighting order.
    names: HashMap<String, u32>,
    entries: HashMap<TaskKey, CostEstimate>,
}

impl CostModel {
    /// Creates a model with the given EMA smoothing factor, clamped to
    /// `(0, 1]` (values outside the range fall back to
    /// [`DEFAULT_EMA_ALPHA`]).
    pub fn new(alpha: f64) -> Self {
        let alpha = if alpha.is_finite() && alpha > 0.0 && alpha <= 1.0 {
            alpha
        } else {
            DEFAULT_EMA_ALPHA
        };
        CostModel {
            alpha,
            names: HashMap::new(),
            entries: HashMap::new(),
        }
    }

    /// The smoothing factor in effect.
    pub fn alpha(&self) -> f64 {
        if self.alpha > 0.0 {
            self.alpha
        } else {
            // `Default` produces alpha == 0.0; treat it as the default.
            DEFAULT_EMA_ALPHA
        }
    }

    // ------------------------------------------------------------------
    // Interned (hot-path) API
    // ------------------------------------------------------------------

    /// Interns `name`, returning its stable id.  Ids are assigned in
    /// first-sighting order, so replicas interning the same (launch-ordered)
    /// name stream derive identical ids.
    pub fn intern_name(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("more than u32::MAX task names");
        self.names.insert(name.to_string(), id);
        id
    }

    /// The interned key of `(name, occurrence)`, interning the name if new.
    pub fn key_for(&mut self, name: &str, occurrence: usize) -> TaskKey {
        TaskKey {
            name_id: self.intern_name(name),
            occurrence: occurrence as u32,
        }
    }

    /// The interned key of `(name, occurrence)` if the name has been seen
    /// before; read-only (never interns).
    pub fn lookup_key(&self, name: &str, occurrence: usize) -> Option<TaskKey> {
        self.names.get(name).map(|&name_id| TaskKey {
            name_id,
            occurrence: occurrence as u32,
        })
    }

    /// Folds one measured duration (virtual seconds) into the history of
    /// `key`.  Non-finite or negative samples are ignored.
    pub fn observe_key(&mut self, key: TaskKey, seconds: f64) {
        if !seconds.is_finite() || seconds < 0.0 {
            return;
        }
        let alpha = self.alpha();
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.seconds = alpha * seconds + (1.0 - alpha) * e.seconds;
                e.samples += 1;
            }
            None => {
                self.entries.insert(
                    key,
                    CostEstimate {
                        seconds,
                        samples: 1,
                    },
                );
            }
        }
    }

    /// The learned execution time of `key`, if any observation exists.
    pub fn predict_key(&self, key: TaskKey) -> Option<f64> {
        self.entries.get(&key).map(|e| e.seconds)
    }

    /// The full estimate (smoothed seconds + sample count) for `key`.
    pub fn estimate_key(&self, key: TaskKey) -> Option<CostEstimate> {
        self.entries.get(&key).copied()
    }

    /// The scheduling weight to use for a task with history key `key` and
    /// declared weight `declared`: the learned duration when one exists and
    /// is positive, the declared weight otherwise.
    ///
    /// Falling back on non-positive predictions keeps the adaptive scheduler
    /// well-behaved on idealized machines (where every measured duration is
    /// zero): an all-zero weight vector would make greedy LPT pile every
    /// task onto one replica.
    pub fn effective_weight_key(&self, key: TaskKey, declared: f64) -> f64 {
        match self.predict_key(key) {
            Some(p) if p > 0.0 && p.is_finite() => p,
            _ => declared,
        }
    }

    // ------------------------------------------------------------------
    // String-keyed (display-form) API
    // ------------------------------------------------------------------

    /// [`CostModel::observe_key`] addressed by the `"name#occurrence"`
    /// display form (a bare name means occurrence 0).
    pub fn observe(&mut self, key: &str, seconds: f64) {
        let (name, occurrence) = split_display_key(key);
        let key = self.key_for(name, occurrence);
        self.observe_key(key, seconds);
    }

    /// [`CostModel::predict_key`] addressed by the display form.
    pub fn predict(&self, key: &str) -> Option<f64> {
        let (name, occurrence) = split_display_key(key);
        self.predict_key(self.lookup_key(name, occurrence)?)
    }

    /// [`CostModel::estimate_key`] addressed by the display form.
    pub fn estimate(&self, key: &str) -> Option<CostEstimate> {
        let (name, occurrence) = split_display_key(key);
        self.estimate_key(self.lookup_key(name, occurrence)?)
    }

    /// [`CostModel::effective_weight_key`] addressed by the display form.
    pub fn effective_weight(&self, key: &str, declared: f64) -> f64 {
        let (name, occurrence) = split_display_key(key);
        match self.lookup_key(name, occurrence) {
            Some(k) => self.effective_weight_key(k, declared),
            None => declared,
        }
    }

    /// Number of distinct history keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no observation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all history (the name interner is kept, so previously issued
    /// [`TaskKey`]s remain valid and simply have no estimate).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_initializes_the_mean() {
        let mut m = CostModel::new(0.25);
        m.observe("t", 4.0);
        assert_eq!(m.predict("t"), Some(4.0));
        assert_eq!(m.estimate("t").unwrap().samples, 1);
    }

    #[test]
    fn ema_smooths_subsequent_observations() {
        let mut m = CostModel::new(0.5);
        m.observe("t", 4.0);
        m.observe("t", 2.0);
        // 0.5 * 2 + 0.5 * 4 = 3.
        assert_eq!(m.predict("t"), Some(3.0));
        assert_eq!(m.estimate("t").unwrap().samples, 2);
    }

    #[test]
    fn ema_converges_on_stable_workloads() {
        // Regression: starting far from the true cost, the estimate must
        // converge geometrically once the workload stabilizes.
        let mut m = CostModel::new(0.5);
        m.observe("t", 100.0);
        for _ in 0..40 {
            m.observe("t", 0.25);
        }
        let err = (m.predict("t").unwrap() - 0.25).abs();
        assert!(err < 1e-9, "EMA did not converge: err = {err}");
    }

    #[test]
    fn invalid_alpha_falls_back_to_default() {
        for alpha in [0.0, -1.0, 2.0, f64::NAN] {
            let m = CostModel::new(alpha);
            assert_eq!(m.alpha(), DEFAULT_EMA_ALPHA);
        }
        assert_eq!(CostModel::default().alpha(), DEFAULT_EMA_ALPHA);
    }

    #[test]
    fn invalid_samples_are_ignored() {
        let mut m = CostModel::new(0.5);
        m.observe("t", f64::NAN);
        m.observe("t", -1.0);
        m.observe("t", f64::INFINITY);
        assert!(m.is_empty());
        m.observe("t", 1.0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn effective_weight_falls_back_when_unknown_or_zero() {
        let mut m = CostModel::new(0.5);
        assert_eq!(m.effective_weight("t", 7.0), 7.0);
        m.observe("t", 0.0);
        // Zero prediction (idealized machine) must not override the declared
        // weight.
        assert_eq!(m.effective_weight("t", 7.0), 7.0);
        m.observe("u", 3.0);
        assert_eq!(m.effective_weight("u", 7.0), 3.0);
    }

    #[test]
    fn instance_keys_separate_same_named_tasks() {
        let mut m = CostModel::new(0.5);
        m.observe(&instance_key("sparsemv", 0), 1.0);
        m.observe(&instance_key("sparsemv", 1), 4.0);
        assert_eq!(m.predict(&instance_key("sparsemv", 0)), Some(1.0));
        assert_eq!(m.predict(&instance_key("sparsemv", 1)), Some(4.0));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn interned_and_display_keys_address_the_same_history() {
        let mut m = CostModel::new(1.0);
        let key = m.key_for("sparsemv", 3);
        m.observe_key(key, 2.5);
        // The display form reaches the same entry...
        assert_eq!(m.predict("sparsemv#3"), Some(2.5));
        // ...and vice versa.
        m.observe("sparsemv#3", 7.5);
        assert_eq!(m.predict_key(key), Some(7.5));
        assert_eq!(m.effective_weight_key(key, 1.0), 7.5);
        assert_eq!(m.len(), 1, "one history entry, two spellings");
    }

    #[test]
    fn interning_is_stable_and_lookup_is_read_only() {
        let mut m = CostModel::new(0.5);
        let a = m.intern_name("waxpby");
        let b = m.intern_name("ddot");
        assert_ne!(a, b);
        assert_eq!(m.intern_name("waxpby"), a, "re-interning returns the id");
        assert_eq!(m.lookup_key("waxpby", 2).unwrap().name_id, a);
        assert!(m.lookup_key("never-seen", 0).is_none());
        assert!(m.is_empty(), "interning alone records no history");
    }

    #[test]
    fn clear_drops_history() {
        let mut m = CostModel::new(0.5);
        let key = m.key_for("t", 0);
        m.observe("t", 1.0);
        assert!(!m.is_empty());
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.predict("t"), None);
        // Keys issued before the clear stay valid (empty history).
        assert_eq!(m.predict_key(key), None);
        m.observe_key(key, 2.0);
        assert_eq!(m.predict("t#0"), Some(2.0));
    }
}
