//! Measured-cost history: the data the adaptive scheduler learns from.
//!
//! The paper's prototype schedules tasks from their *declared* weights (or,
//! with the static split, from nothing at all) and notes that "more elaborate
//! strategies could be designed".  The elaborate strategy implemented here
//! closes the loop: every executed section records the virtual-time duration
//! of each of its tasks ([`crate::report::TaskCostSample`]), the runtime
//! feeds those durations into an exponential-moving-average history keyed
//! per task instance (this module; see [`instance_key`]), and schedulers
//! that opt in (see
//! [`crate::sched::Scheduler::wants_measured_weights`]) receive the learned
//! durations instead of the declared weights on the next instance of the
//! section.
//!
//! ## Replica determinism
//!
//! Work-sharing correctness requires every replica to compute the *same*
//! assignment without exchanging messages, so the cost model must evolve
//! identically on all replicas.  This holds because the runtime feeds it one
//! observation per task of every executed section, in task order, where the
//! observation is the task's modeled execution time — a pure function of the
//! task's declared [`crate::task::TaskCost`] and the cluster-wide machine
//! model, identical no matter which replica actually ran the task (see
//! `observed_seconds` in [`crate::report::TaskCostSample`]).  No
//! wall-clock or per-replica state ever enters the model.

use std::collections::HashMap;

/// Default smoothing factor of the exponential moving average.
pub const DEFAULT_EMA_ALPHA: f64 = 0.5;

/// Composes the EMA history key of one task instance: the task name
/// qualified by the task's occurrence index among the same-named tasks of
/// its section (`"sparsemv#3"` is the fourth `sparsemv` task launched).
///
/// Real sections launch many tasks under one name (HPCCG's `sparsemv`
/// section is eight identically named chunks); qualifying the key by
/// occurrence lets each chunk learn its own history, so heterogeneous
/// same-named tasks still schedule correctly.  Occurrence indices follow
/// launch order, which is identical on every replica.
pub fn instance_key(name: &str, occurrence: usize) -> String {
    format!("{name}#{occurrence}")
}

/// One learned per-key cost estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Exponentially smoothed execution time in virtual seconds.
    pub seconds: f64,
    /// Number of observations folded into the estimate.
    pub samples: u64,
}

/// Exponential-moving-average history of measured task execution times,
/// keyed by an arbitrary string (the runtime uses [`instance_key`], the
/// task name qualified by its occurrence index within the section).
///
/// `mean ← α·sample + (1−α)·mean`, with the first observation initializing
/// the mean directly so a single iteration is enough to start scheduling
/// from measured costs.
///
/// # Examples
///
/// ```
/// use ipr_core::CostModel;
///
/// let mut model = CostModel::new(0.5);
/// model.observe("sparsemv", 0.25);
/// model.observe("sparsemv", 0.25);
/// assert_eq!(model.predict("sparsemv"), Some(0.25));
/// // Unknown names fall back to the declared weight.
/// assert_eq!(model.effective_weight("ddot", 42.0), 42.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    alpha: f64,
    entries: HashMap<String, CostEstimate>,
}

impl CostModel {
    /// Creates a model with the given EMA smoothing factor, clamped to
    /// `(0, 1]` (values outside the range fall back to
    /// [`DEFAULT_EMA_ALPHA`]).
    pub fn new(alpha: f64) -> Self {
        let alpha = if alpha.is_finite() && alpha > 0.0 && alpha <= 1.0 {
            alpha
        } else {
            DEFAULT_EMA_ALPHA
        };
        CostModel {
            alpha,
            entries: HashMap::new(),
        }
    }

    /// The smoothing factor in effect.
    pub fn alpha(&self) -> f64 {
        if self.alpha > 0.0 {
            self.alpha
        } else {
            // `Default` produces alpha == 0.0; treat it as the default.
            DEFAULT_EMA_ALPHA
        }
    }

    /// Folds one measured duration (virtual seconds) into the history of
    /// `key`.  Non-finite or negative samples are ignored.
    pub fn observe(&mut self, key: &str, seconds: f64) {
        if !seconds.is_finite() || seconds < 0.0 {
            return;
        }
        let alpha = self.alpha();
        match self.entries.get_mut(key) {
            Some(e) => {
                e.seconds = alpha * seconds + (1.0 - alpha) * e.seconds;
                e.samples += 1;
            }
            None => {
                self.entries.insert(
                    key.to_string(),
                    CostEstimate {
                        seconds,
                        samples: 1,
                    },
                );
            }
        }
    }

    /// The learned execution time of `key`, if any observation exists.
    pub fn predict(&self, key: &str) -> Option<f64> {
        self.entries.get(key).map(|e| e.seconds)
    }

    /// The full estimate (smoothed seconds + sample count) for `key`.
    pub fn estimate(&self, key: &str) -> Option<CostEstimate> {
        self.entries.get(key).copied()
    }

    /// The scheduling weight to use for a task with history key `key` and
    /// declared weight `declared`: the learned duration when one exists and
    /// is positive, the declared weight otherwise.
    ///
    /// Falling back on non-positive predictions keeps the adaptive scheduler
    /// well-behaved on idealized machines (where every measured duration is
    /// zero): an all-zero weight vector would make greedy LPT pile every
    /// task onto one replica.
    pub fn effective_weight(&self, key: &str, declared: f64) -> f64 {
        match self.predict(key) {
            Some(p) if p > 0.0 && p.is_finite() => p,
            _ => declared,
        }
    }

    /// Number of distinct history keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no observation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all history.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_initializes_the_mean() {
        let mut m = CostModel::new(0.25);
        m.observe("t", 4.0);
        assert_eq!(m.predict("t"), Some(4.0));
        assert_eq!(m.estimate("t").unwrap().samples, 1);
    }

    #[test]
    fn ema_smooths_subsequent_observations() {
        let mut m = CostModel::new(0.5);
        m.observe("t", 4.0);
        m.observe("t", 2.0);
        // 0.5 * 2 + 0.5 * 4 = 3.
        assert_eq!(m.predict("t"), Some(3.0));
        assert_eq!(m.estimate("t").unwrap().samples, 2);
    }

    #[test]
    fn ema_converges_on_stable_workloads() {
        // Regression: starting far from the true cost, the estimate must
        // converge geometrically once the workload stabilizes.
        let mut m = CostModel::new(0.5);
        m.observe("t", 100.0);
        for _ in 0..40 {
            m.observe("t", 0.25);
        }
        let err = (m.predict("t").unwrap() - 0.25).abs();
        assert!(err < 1e-9, "EMA did not converge: err = {err}");
    }

    #[test]
    fn invalid_alpha_falls_back_to_default() {
        for alpha in [0.0, -1.0, 2.0, f64::NAN] {
            let m = CostModel::new(alpha);
            assert_eq!(m.alpha(), DEFAULT_EMA_ALPHA);
        }
        assert_eq!(CostModel::default().alpha(), DEFAULT_EMA_ALPHA);
    }

    #[test]
    fn invalid_samples_are_ignored() {
        let mut m = CostModel::new(0.5);
        m.observe("t", f64::NAN);
        m.observe("t", -1.0);
        m.observe("t", f64::INFINITY);
        assert!(m.is_empty());
        m.observe("t", 1.0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn effective_weight_falls_back_when_unknown_or_zero() {
        let mut m = CostModel::new(0.5);
        assert_eq!(m.effective_weight("t", 7.0), 7.0);
        m.observe("t", 0.0);
        // Zero prediction (idealized machine) must not override the declared
        // weight.
        assert_eq!(m.effective_weight("t", 7.0), 7.0);
        m.observe("u", 3.0);
        assert_eq!(m.effective_weight("u", 7.0), 3.0);
    }

    #[test]
    fn instance_keys_separate_same_named_tasks() {
        let mut m = CostModel::new(0.5);
        m.observe(&instance_key("sparsemv", 0), 1.0);
        m.observe(&instance_key("sparsemv", 1), 4.0);
        assert_eq!(m.predict(&instance_key("sparsemv", 0)), Some(1.0));
        assert_eq!(m.predict(&instance_key("sparsemv", 1)), Some(4.0));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn clear_drops_history() {
        let mut m = CostModel::new(0.5);
        m.observe("t", 1.0);
        assert!(!m.is_empty());
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.predict("t"), None);
    }
}
