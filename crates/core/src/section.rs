//! Intra-parallel sections: the work-sharing protocol (Algorithm 1).
//!
//! A [`Section`] collects task instances between `Intra_Section_begin` and
//! `Intra_Section_end`.  When the section ends, the protocol runs:
//!
//! 1. every replica snapshots the `inout` ranges of every task (the extra
//!    copy of Section III-B2 that makes re-execution safe after a partial
//!    update);
//! 2. a deterministic scheduler assigns every task to one replica.  The
//!    assignment is computed over the *full* replica set (dead replicas
//!    included) so that every replica derives exactly the same assignment
//!    locally, with no coordination messages, even when a failure
//!    notification races with section entry.  Tasks assigned to a replica
//!    that is already known to be dead are simply adopted in step 5;
//! 3. each replica executes its own tasks in order, posting non-blocking
//!    sends of every `out`/`inout` range to its peer replicas as each task
//!    completes (so update transfers overlap with the remaining computation,
//!    as in the paper's Open MPI implementation);
//! 4. each replica then receives the updates of the tasks it did not
//!    execute and applies them to its workspace;
//! 5. if the owner of a pending task is detected as crashed (a receive
//!    returns an error, as Algorithm 1 assumes), the task is *re-executed
//!    locally* after restoring the `inout` snapshots — this is the "execute
//!    the task locally" option of the paper's failure case 2 and is always
//!    correct because tasks of one section are only input-dependent;
//! 6. the section completes once every task is done and all posted sends
//!    have drained (`MPI_Waitall` in the paper's implementation).
//!
//! In `Native` and `Replicated` execution modes the same API executes every
//! task locally and ships nothing, which is how the same application code
//! produces the paper's three configurations (Open MPI / SDR-MPI / intra).

use crate::error::{IntraError, IntraResult};
use crate::report::{SectionReport, TaskCostSample};
use crate::runtime::IntraRuntime;
use crate::task::{ArgTag, TaskCtx, TaskDef};
use crate::workspace::Workspace;
use replication::ProtocolPoint;
use simmpi::{MpiError, SendRequest, Tag};
use std::ops::Range;

/// First tag used for update messages on the replica communicator.  The
/// replica communicator carries no other traffic, so this only needs to stay
/// clear of the reserved collective range.
const UPDATE_TAG_BASE: Tag = 1 << 27;
/// Maximum number of tasks per section (tag-encoding limit).
pub const MAX_TASKS_PER_SECTION: usize = 2048;
/// Maximum number of arguments per task (tag-encoding limit).
pub const MAX_ARGS_PER_TASK: usize = 16;

fn update_tag(section: usize, task: usize, arg: usize) -> Tag {
    let window = (section % 512) as u32;
    UPDATE_TAG_BASE
        + window * (MAX_TASKS_PER_SECTION * MAX_ARGS_PER_TASK) as u32
        + (task as u32) * MAX_ARGS_PER_TASK as u32
        + arg as u32
}

/// Splits `0..total` into `parts` contiguous ranges whose lengths differ by
/// at most one (empty ranges are omitted when `total < parts`).
pub fn split_ranges(total: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// An open intra-parallel section.
pub struct Section<'a> {
    rt: &'a mut IntraRuntime,
    ws: &'a mut Workspace,
    tasks: Vec<TaskDef>,
}

impl<'a> Section<'a> {
    pub(crate) fn new(rt: &'a mut IntraRuntime, ws: &'a mut Workspace) -> Self {
        Section {
            rt,
            ws,
            tasks: Vec::new(),
        }
    }

    /// Adds a task instance to the section (`Intra_Task_launch`).
    pub fn add_task(&mut self, task: TaskDef) -> IntraResult<()> {
        task.validate(self.ws)?;
        if task.args.len() > MAX_ARGS_PER_TASK {
            return Err(IntraError::InvalidTask(format!(
                "task '{}' has {} arguments (max {MAX_ARGS_PER_TASK})",
                task.name,
                task.args.len()
            )));
        }
        if self.tasks.len() >= MAX_TASKS_PER_SECTION {
            return Err(IntraError::InvalidTask(format!(
                "section already has {MAX_TASKS_PER_SECTION} tasks"
            )));
        }
        self.tasks.push(task);
        Ok(())
    }

    /// Splits the index space `0..total` into the configured number of tasks
    /// per section and adds one task per chunk, built by `make`.
    pub fn add_split<F>(&mut self, total: usize, make: F) -> IntraResult<()>
    where
        F: Fn(Range<usize>) -> TaskDef,
    {
        let parts = self.rt.config().tasks_per_section;
        for chunk in split_ranges(total, parts) {
            self.add_task(make(chunk))?;
        }
        Ok(())
    }

    /// Number of tasks launched so far.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Read access to the workspace (e.g. to compute argument ranges).
    pub fn workspace(&self) -> &Workspace {
        self.ws
    }

    /// Ends the section (`Intra_Section_end`): runs the work-sharing
    /// protocol and returns the section report.
    pub fn end(self) -> IntraResult<SectionReport> {
        let Section { rt, ws, tasks } = self;
        execute_section(rt, ws, tasks)
    }
}

/// Builds the execution context for a task from the workspace, restoring
/// `inout` ranges from their snapshots ("loading a' into a" in Figure 2c).
fn build_ctx(ws: &mut Workspace, task: &TaskDef, snapshots: &[Option<Vec<f64>>]) -> TaskCtx {
    // First restore inout snapshots into the workspace so that both the
    // workspace and the context see the pre-section values.
    for (arg, snap) in task.args.iter().zip(snapshots) {
        if let Some(values) = snap {
            ws.write_range(arg.var, arg.range.clone(), values);
        }
    }
    let mut ctx = TaskCtx {
        inputs: Vec::new(),
        outputs: Vec::new(),
        scalars: task.scalars.clone(),
    };
    for arg in &task.args {
        let data = ws.read_range(arg.var, arg.range.clone());
        match arg.tag {
            ArgTag::In => ctx.inputs.push(data),
            ArgTag::Out | ArgTag::InOut => ctx.outputs.push(data),
        }
    }
    ctx
}

/// Writes the output buffers of a finished task back into the workspace.
fn write_back(ws: &mut Workspace, task: &TaskDef, ctx: &TaskCtx) -> IntraResult<()> {
    let mut out_idx = 0;
    for arg in &task.args {
        if !arg.tag.is_output() {
            continue;
        }
        let buf = &ctx.outputs[out_idx];
        if buf.len() != arg.len() {
            return Err(IntraError::InvalidTask(format!(
                "task '{}' resized output argument {} ({} -> {} elements)",
                task.name,
                out_idx,
                arg.len(),
                buf.len()
            )));
        }
        ws.write_range(arg.var, arg.range.clone(), buf);
        out_idx += 1;
    }
    Ok(())
}

/// Occurrence indices for the tasks of one section, in launch order: the
/// i-th task named `n` gets occurrence `i`.  Launch order is identical on
/// every replica, so the indices are too.  Together with the task name this
/// is the cost-model identity of each instance (interned as
/// [`crate::cost::TaskKey`]); no strings are formatted on this path.
fn occurrence_indices(tasks: &[TaskDef]) -> Vec<u32> {
    let mut occurrence: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
    tasks
        .iter()
        .map(|t| {
            let n = occurrence.entry(t.name.as_str()).or_insert(0);
            let o = *n;
            *n += 1;
            o
        })
        .collect()
}

/// The virtual-time cost of executing `task`, in seconds: exactly what
/// [`run_task`] charges to the clock (the roofline time of the declared
/// cost, or zero for cost-less tasks / disabled charging).
///
/// This is a pure function of the task and the cluster-wide machine model,
/// so every replica computes the same value for every task — including the
/// tasks it did not execute.  The cost model is fed from these values (see
/// [`TaskCostSample`]) precisely because the stream must be identical on all
/// replicas: the next section's assignment is derived from it without any
/// coordination messages.  A debug assertion in the execution loop checks
/// that the actual clock delta of each locally executed task agrees.
fn modeled_task_seconds(rt: &IntraRuntime, task: &TaskDef) -> f64 {
    if rt.config().charge_costs {
        if let Some(cost) = task.cost {
            return rt
                .env()
                .proc()
                .machine()
                .compute
                .region_time(cost.flops, cost.mem_bytes)
                .as_secs();
        }
    }
    0.0
}

/// Executes one task locally: restore snapshots, build the context, charge
/// the modeled cost, run the body, write the outputs back.
fn run_task(
    rt: &IntraRuntime,
    ws: &mut Workspace,
    task: &TaskDef,
    snapshots: &[Option<Vec<f64>>],
) -> IntraResult<()> {
    let mut ctx = build_ctx(ws, task, snapshots);
    if rt.config().charge_costs {
        if let Some(cost) = task.cost {
            rt.env().charge_compute(cost.flops, cost.mem_bytes);
        }
    }
    (task.func)(&mut ctx);
    write_back(ws, task, &ctx)
}

fn execute_section(
    rt: &mut IntraRuntime,
    ws: &mut Workspace,
    tasks: Vec<TaskDef>,
) -> IntraResult<SectionReport> {
    let result = execute_section_inner(rt, ws, tasks);
    if let Err(e) = &result {
        // A replica that cannot complete the section protocol (bad task
        // definition, unexpected MPI error, …) can no longer stay consistent
        // with its peers; converting the local error into a crash-stop
        // failure lets the surviving replicas detect it and re-execute the
        // affected tasks instead of blocking on updates that will never
        // arrive.
        if *e != IntraError::Crashed && !rt.env().is_failed() {
            rt.env().proc().fail_here();
        }
    }
    result
}

fn execute_section_inner(
    rt: &mut IntraRuntime,
    ws: &mut Workspace,
    tasks: Vec<TaskDef>,
) -> IntraResult<SectionReport> {
    let section = rt.next_section_index();
    let start_time = rt.env().now();

    if rt.env().maybe_fail(ProtocolPoint::SectionEnter { section }) {
        return Err(IntraError::Crashed);
    }
    if rt.env().is_failed() {
        return Err(IntraError::Crashed);
    }

    let share = rt.env().mode().shares_work() && rt.env().rcomm().degree() > 1;
    let modeled_scale = rt.config().modeled_scale;

    // --- inout snapshots (only needed when work is shared) -------------
    let mut snapshots: Vec<Vec<Option<Vec<f64>>>> = Vec::with_capacity(tasks.len());
    let mut inout_snapshot_bytes = 0usize;
    for task in &tasks {
        let mut per_arg = Vec::with_capacity(task.args.len());
        for arg in &task.args {
            if share && arg.tag == ArgTag::InOut {
                per_arg.push(Some(ws.read_range(arg.var, arg.range.clone())));
                let bytes = (arg.bytes() as f64 * modeled_scale) as usize;
                inout_snapshot_bytes += bytes;
                rt.env().proc().charge_memcpy(bytes);
            } else {
                per_arg.push(None);
            }
        }
        snapshots.push(per_arg);
    }

    // --- non-sharing modes: execute everything locally -----------------
    if !share {
        let my_replica = rt.env().replica_id();
        let occurrences = occurrence_indices(&tasks);
        let mut task_costs = Vec::with_capacity(tasks.len());
        for (task, occurrence) in tasks.iter().zip(occurrences) {
            run_task(rt, ws, task, &vec![None; task.args.len()])?;
            task_costs.push(TaskCostSample {
                name: task.name.clone(),
                occurrence,
                declared_weight: task.weight(),
                observed_seconds: modeled_task_seconds(rt, task),
                executed_by: my_replica,
                executed_locally: true,
            });
        }
        let end = rt.env().now();
        if rt.env().maybe_fail(ProtocolPoint::SectionExit { section }) {
            return Err(IntraError::Crashed);
        }
        let report = SectionReport {
            section_index: section,
            num_tasks: tasks.len(),
            tasks_executed_locally: tasks.len(),
            tasks_received: 0,
            tasks_reexecuted: 0,
            update_bytes_sent: 0,
            update_bytes_received: 0,
            inout_snapshot_bytes: 0,
            replica_failures_observed: 0,
            start_time,
            local_work_done: end,
            end_time: end,
            task_costs,
        };
        rt.record(report.clone());
        return Ok(report);
    }

    // --- work-sharing protocol ------------------------------------------
    let rcomm = rt.env().rcomm().clone();
    let rc = rcomm.replica_comm().clone();
    let my = rcomm.replica_id();

    // Scheduling is a pure function of the task weights and the *full*
    // replica set, never of the (racy) alive set: every replica therefore
    // computes the same assignment without exchanging messages.  Work lost
    // to crashed replicas is recovered by adoption in Phase B.
    //
    // Schedulers that ask for measured weights receive the cost model's
    // learned execution times instead of the declared weights; the model is
    // itself replica-deterministic (see `modeled_task_seconds`), so the
    // no-coordination property is preserved.
    let all_replicas: Vec<usize> = (0..rcomm.degree()).collect();
    let occurrences = occurrence_indices(&tasks);
    let declared_weights: Vec<f64> = tasks.iter().map(TaskDef::weight).collect();
    let weights: Vec<f64> = if rt.config().scheduler.wants_measured_weights() {
        // Read-only key lookup: a name with no history has no interned id
        // either, and falls back to the declared weight.
        let model = rt.cost_model();
        tasks
            .iter()
            .zip(&occurrences)
            .zip(&declared_weights)
            .map(
                |((t, &occ), &d)| match model.lookup_key(&t.name, occ as usize) {
                    Some(key) => model.effective_weight_key(key, d),
                    None => d,
                },
            )
            .collect()
    } else {
        declared_weights.clone()
    };
    let mut assignment = rt.config().scheduler.assign(&weights, &all_replicas);
    debug_assert_eq!(assignment.len(), tasks.len());
    // Per-task observed costs: the deterministic modeled time of every task
    // (identical on each replica, whoever executes it).
    let observed_seconds: Vec<f64> = tasks.iter().map(|t| modeled_task_seconds(rt, t)).collect();

    let n = tasks.len();
    let mut done = vec![false; n];
    // Peer replicas whose crash this section observed through a failed
    // update receive (the deterministic, protocol-level notion of an
    // observed failure).
    let mut dead_owners = std::collections::BTreeSet::new();
    let mut received_args: Vec<Vec<bool>> =
        tasks.iter().map(|t| vec![false; t.args.len()]).collect();
    let mut send_reqs: Vec<SendRequest> = Vec::new();
    let mut update_bytes_sent = 0usize;
    let mut update_bytes_received = 0usize;
    let mut tasks_local = 0usize;
    let mut tasks_received = 0usize;
    let mut tasks_reexecuted = 0usize;

    // Sends the updates of task `i` to every peer replica.  Crashed peers
    // are served too — the sender has no failure detector, so consulting the
    // (real-time-racy) failure board here would make the charged send time
    // depend on thread scheduling; the network drops copies addressed to
    // crashed replicas.
    let send_updates = |ws: &Workspace,
                        i: usize,
                        rt: &IntraRuntime,
                        send_reqs: &mut Vec<SendRequest>,
                        update_bytes_sent: &mut usize|
     -> IntraResult<()> {
        let task = &tasks[i];
        let mut vars_sent = 0usize;
        for (ai, arg) in task.args.iter().enumerate() {
            if !arg.tag.is_output() {
                continue;
            }
            let data = ws.read_range(arg.var, arg.range.clone());
            let modeled =
                ((data.len() * std::mem::size_of::<f64>()) as f64 * modeled_scale) as usize;
            for peer in 0..rcomm.degree() {
                if peer == my {
                    continue;
                }
                let tag = update_tag(section, i, ai);
                let req = rc.isend_with_modeled_size(&data, peer, tag, modeled)?;
                send_reqs.push(req);
                *update_bytes_sent += modeled;
            }
            vars_sent += 1;
            if rt.env().maybe_fail(ProtocolPoint::MidUpdateSend {
                section,
                task: i,
                vars_sent,
            }) {
                return Err(IntraError::Crashed);
            }
        }
        if rt
            .env()
            .maybe_fail(ProtocolPoint::AfterUpdateSend { section, task: i })
        {
            return Err(IntraError::Crashed);
        }
        Ok(())
    };

    // Phase A: execute my tasks, overlapping update sends with the remaining
    // computation.
    for i in 0..n {
        if assignment[i] != my {
            continue;
        }
        let task_started = rt.env().now();
        run_task(rt, ws, &tasks[i], &snapshots[i])?;
        // The clock delta of a locally executed task must agree with the
        // modeled time fed to the cost model (the determinism contract).
        debug_assert!(
            (rt.env().now().saturating_sub(task_started).as_secs() - observed_seconds[i]).abs()
                <= 1e-9 * observed_seconds[i].max(1.0),
            "task '{}' charged a different time than its model",
            tasks[i].name
        );
        tasks_local += 1;
        done[i] = true;
        if rt
            .env()
            .maybe_fail(ProtocolPoint::BeforeUpdateSend { section, task: i })
        {
            return Err(IntraError::Crashed);
        }
        send_updates(ws, i, rt, &mut send_reqs, &mut update_bytes_sent)?;
    }
    let local_work_done = rt.env().now();

    // Phase B: collect (or recompute) the remaining tasks.
    for i in 0..n {
        if done[i] {
            continue;
        }
        let owner = assignment[i];
        // Always try to receive first, even when the owner is already known
        // to be dead: updates it sent before crashing are still deliverable
        // (the paper's failure case 2 — "get the update from the replicas
        // that already got it" degenerates to draining the channel here), and
        // the receive returns an error immediately if nothing was sent.
        let mut adopt = owner == my;
        if !adopt {
            // Receive every output argument of the task from its owner.
            let mut receive_failed = false;
            for (ai, arg) in tasks[i].args.iter().enumerate() {
                if !arg.tag.is_output() || received_args[i][ai] {
                    continue;
                }
                let tag = update_tag(section, i, ai);
                match rc.recv::<f64>(owner, tag) {
                    Ok(data) => {
                        if data.len() != arg.len() {
                            return Err(IntraError::InvalidTask(format!(
                                "update for task '{}' arg {ai} has {} elements, expected {}",
                                tasks[i].name,
                                data.len(),
                                arg.len()
                            )));
                        }
                        ws.write_range(arg.var, arg.range.clone(), &data);
                        received_args[i][ai] = true;
                        update_bytes_received += ((data.len() * std::mem::size_of::<f64>()) as f64
                            * modeled_scale)
                            as usize;
                    }
                    Err(MpiError::ProcessFailed { .. }) => {
                        // Owner crashed before completing this update: adopt
                        // the task (failure cases 1 and 3 of Section III-B2).
                        dead_owners.insert(owner);
                        receive_failed = true;
                        break;
                    }
                    Err(MpiError::SelfFailed) => return Err(IntraError::Crashed),
                    Err(e) => return Err(e.into()),
                }
            }
            if !receive_failed {
                done[i] = true;
                tasks_received += 1;
                continue;
            }
            adopt = true;
        }
        if adopt {
            assignment[i] = my;
            // Re-execute locally.  `run_task` restores the inout snapshots
            // first, so a partial update applied above cannot create the
            // true-dependence problem of Figure 2b.
            run_task(rt, ws, &tasks[i], &snapshots[i])?;
            tasks_local += 1;
            tasks_reexecuted += 1;
            done[i] = true;
        }
    }

    // Drain the posted update sends (MPI_Waitall in the paper's prototype).
    rc.waitall_send(send_reqs)?;
    let end_time = rt.env().now();

    if rt.env().maybe_fail(ProtocolPoint::SectionExit { section }) {
        return Err(IntraError::Crashed);
    }

    let task_costs: Vec<TaskCostSample> = tasks
        .iter()
        .zip(occurrences)
        .enumerate()
        .map(|(i, (t, occurrence))| TaskCostSample {
            name: t.name.clone(),
            occurrence,
            declared_weight: declared_weights[i],
            observed_seconds: observed_seconds[i],
            executed_by: assignment[i],
            executed_locally: assignment[i] == my,
        })
        .collect();

    let report = SectionReport {
        section_index: section,
        num_tasks: n,
        tasks_executed_locally: tasks_local,
        tasks_received,
        tasks_reexecuted,
        update_bytes_sent,
        update_bytes_received,
        inout_snapshot_bytes,
        replica_failures_observed: dead_owners.len(),
        start_time,
        local_work_done,
        end_time,
        task_costs,
    };
    rt.record(report.clone());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_cover_the_index_space() {
        let ranges = split_ranges(10, 3);
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        let ranges = split_ranges(8, 8);
        assert_eq!(ranges.len(), 8);
        assert!(ranges.iter().all(|r| r.len() == 1));
        // Fewer elements than parts: empty chunks are dropped.
        let ranges = split_ranges(3, 8);
        assert_eq!(ranges.len(), 3);
        assert!(split_ranges(0, 4).is_empty());
        // parts == 0 is clamped to 1.
        assert_eq!(split_ranges(5, 0), vec![0..5]);
    }

    #[test]
    fn update_tags_are_unique_within_a_section() {
        let mut seen = std::collections::HashSet::new();
        for task in 0..32 {
            for arg in 0..MAX_ARGS_PER_TASK {
                assert!(seen.insert(update_tag(3, task, arg)));
            }
        }
        // Different sections (within the window) do not collide either.
        assert_ne!(update_tag(1, 0, 0), update_tag(2, 0, 0));
    }
}
