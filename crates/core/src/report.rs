//! Per-section and per-run metrics.
//!
//! These reports are what the benchmark harness turns into the paper's
//! figures: the split between local compute time and the time spent finishing
//! update transfers ("intra updates", the dashed area of Figure 5a), the
//! number of bytes shipped between replicas, and the bookkeeping of
//! failure-driven re-executions.

use simcluster::SimTime;

/// Measured cost of one task instance of an executed section.
///
/// `observed_seconds` is the task's execution time in *virtual* seconds: the
/// time the task charges to the virtual clock when it runs (the roofline
/// time of its declared cost on the cluster-wide machine model).  It is
/// recorded for every task of the section — including the ones a peer
/// replica executed — because the value is a pure function of the task and
/// the machine model, identical no matter which replica runs the task (a
/// debug assertion in the section executor checks the actual clock delta of
/// every locally executed task against it).  Every replica therefore
/// observes an identical cost stream, which is what lets the
/// [`crate::cost::CostModel`] — and hence the adaptive scheduler's
/// assignment — stay replica-deterministic without any coordination
/// messages.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskCostSample {
    /// Task name.
    pub name: String,
    /// Occurrence index of the name among same-named tasks of the section
    /// (launch order), so heterogeneous same-named chunks learn independent
    /// histories.  `(name, occurrence)` is the cost-model identity of the
    /// instance; the runtime stores it interned as a
    /// [`crate::cost::TaskKey`], and [`TaskCostSample::key`] renders the
    /// human-readable `"name#occurrence"` spelling.
    pub occurrence: u32,
    /// The declared scheduling weight ([`crate::task::TaskDef::weight`]).
    pub declared_weight: f64,
    /// Execution time in virtual seconds (see the type-level docs).
    pub observed_seconds: f64,
    /// Replica that executed the task (after failure-driven adoption).
    pub executed_by: usize,
    /// True if this replica executed the task itself.
    pub executed_locally: bool,
}

impl TaskCostSample {
    /// The human-readable cost-model key of this sample
    /// (`"name#occurrence"`, see [`crate::cost::instance_key`]).
    pub fn key(&self) -> String {
        crate::cost::instance_key(&self.name, self.occurrence as usize)
    }
}

/// Metrics of one executed intra-parallel section.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a SectionReport carries the section's metrics; dropping it silently loses them"]
pub struct SectionReport {
    /// Index of the section (0-based, per logical process).
    pub section_index: usize,
    /// Number of tasks in the section.
    pub num_tasks: usize,
    /// Tasks executed by this replica (including re-executions).
    pub tasks_executed_locally: usize,
    /// Tasks whose result was received from another replica.
    pub tasks_received: usize,
    /// Tasks re-executed locally because their owner crashed.
    pub tasks_reexecuted: usize,
    /// Modeled bytes of update data sent to other replicas.
    pub update_bytes_sent: usize,
    /// Modeled bytes of update data received from other replicas.
    pub update_bytes_received: usize,
    /// Modeled bytes snapshotted for `inout` arguments.
    pub inout_snapshot_bytes: usize,
    /// Number of peer replicas of this logical process whose crash this
    /// section observed through a failed update receive (the deterministic,
    /// protocol-level notion of an observed failure).
    pub replica_failures_observed: usize,
    /// Virtual time at section entry.
    pub start_time: SimTime,
    /// Virtual time when this replica finished executing its own tasks (and
    /// had posted all its update sends).
    pub local_work_done: SimTime,
    /// Virtual time at section exit (all updates exchanged).
    pub end_time: SimTime,
    /// Per-task measured execution costs (one entry per task, in launch
    /// order).  Fed into the runtime's [`crate::cost::CostModel`] so later
    /// instances of the section can be scheduled from measured rather than
    /// declared weights.
    pub task_costs: Vec<TaskCostSample>,
}

impl SectionReport {
    /// Total virtual time spent in the section.
    pub fn total_time(&self) -> SimTime {
        self.end_time.saturating_sub(self.start_time)
    }

    /// Virtual time spent executing this replica's own tasks (the solid part
    /// of the Figure 5a bars).
    pub fn local_work_time(&self) -> SimTime {
        self.local_work_done.saturating_sub(self.start_time)
    }

    /// Virtual time spent finishing update transfers after the local work was
    /// done (the dashed "intra updates" part of the Figure 5a bars).
    pub fn update_drain_time(&self) -> SimTime {
        self.end_time.saturating_sub(self.local_work_done)
    }

    /// Sum of the observed per-task execution times of this section, in
    /// virtual seconds (the perfectly parallelizable work the scheduler
    /// distributes).
    pub fn observed_task_seconds(&self) -> f64 {
        self.task_costs.iter().map(|t| t.observed_seconds).sum()
    }
}

/// Aggregated view over any slice of [`SectionReport`]s: the one place the
/// per-section metrics are summed.  [`RuntimeReport`] is a thin owner over
/// this view, and consumers that aggregate a *sub-range* of sections (the
/// app driver sums only the measured region) borrow the same arithmetic
/// instead of duplicating it.
#[derive(Debug, Clone, Copy)]
pub struct SectionsView<'a> {
    sections: &'a [SectionReport],
}

impl<'a> SectionsView<'a> {
    /// Wraps a slice of section reports.
    pub fn new(sections: &'a [SectionReport]) -> Self {
        SectionsView { sections }
    }

    /// The underlying sections.
    pub fn sections(&self) -> &'a [SectionReport] {
        self.sections
    }

    /// Number of sections in the view.
    pub fn num_sections(&self) -> usize {
        self.sections.len()
    }

    /// Total virtual time spent inside sections.
    pub fn total_section_time(&self) -> SimTime {
        self.sections.iter().map(SectionReport::total_time).sum()
    }

    /// Total virtual time spent executing local tasks.
    pub fn total_local_work_time(&self) -> SimTime {
        self.sections
            .iter()
            .map(SectionReport::local_work_time)
            .sum()
    }

    /// Total virtual time spent draining update transfers.
    pub fn total_update_drain_time(&self) -> SimTime {
        self.sections
            .iter()
            .map(SectionReport::update_drain_time)
            .sum()
    }

    /// Total modeled update bytes sent.
    pub fn total_update_bytes_sent(&self) -> usize {
        self.sections.iter().map(|s| s.update_bytes_sent).sum()
    }

    /// Total modeled update bytes received.
    pub fn total_update_bytes_received(&self) -> usize {
        self.sections.iter().map(|s| s.update_bytes_received).sum()
    }

    /// Total tasks executed locally across all sections.
    pub fn total_tasks_executed(&self) -> usize {
        self.sections.iter().map(|s| s.tasks_executed_locally).sum()
    }

    /// Total tasks re-executed after failures.
    pub fn total_tasks_reexecuted(&self) -> usize {
        self.sections.iter().map(|s| s.tasks_reexecuted).sum()
    }

    /// Total tasks whose result was received from a peer replica.
    pub fn total_tasks_received(&self) -> usize {
        self.sections.iter().map(|s| s.tasks_received).sum()
    }

    /// Total replica failures of this logical process observed inside
    /// sections (a crash spanning several sections counts once per section
    /// that observed it).
    pub fn total_replica_failures_observed(&self) -> usize {
        self.sections
            .iter()
            .map(|s| s.replica_failures_observed)
            .sum()
    }
}

/// Accumulated metrics over every section executed by one
/// [`crate::runtime::IntraRuntime`] — a thin owner over [`SectionsView`],
/// which holds the aggregation arithmetic.
#[derive(Debug, Clone, Default)]
pub struct RuntimeReport {
    sections: Vec<SectionReport>,
}

impl RuntimeReport {
    /// Records a section report.
    pub fn push(&mut self, report: SectionReport) {
        self.sections.push(report);
    }

    /// All recorded sections.
    pub fn sections(&self) -> &[SectionReport] {
        &self.sections
    }

    /// The aggregated view over every recorded section.
    pub fn view(&self) -> SectionsView<'_> {
        SectionsView::new(&self.sections)
    }

    /// Number of sections executed.
    pub fn num_sections(&self) -> usize {
        self.sections.len()
    }

    /// Total virtual time spent inside sections.
    pub fn total_section_time(&self) -> SimTime {
        self.view().total_section_time()
    }

    /// Total virtual time spent executing local tasks.
    pub fn total_local_work_time(&self) -> SimTime {
        self.view().total_local_work_time()
    }

    /// Total virtual time spent draining update transfers.
    pub fn total_update_drain_time(&self) -> SimTime {
        self.view().total_update_drain_time()
    }

    /// Total modeled update bytes sent.
    pub fn total_update_bytes_sent(&self) -> usize {
        self.view().total_update_bytes_sent()
    }

    /// Total modeled update bytes received.
    pub fn total_update_bytes_received(&self) -> usize {
        self.view().total_update_bytes_received()
    }

    /// Total tasks executed locally across all sections.
    pub fn total_tasks_executed(&self) -> usize {
        self.view().total_tasks_executed()
    }

    /// Total tasks re-executed after failures.
    pub fn total_tasks_reexecuted(&self) -> usize {
        self.view().total_tasks_reexecuted()
    }

    /// Total tasks whose result was received from a peer replica.
    pub fn total_tasks_received(&self) -> usize {
        self.view().total_tasks_received()
    }

    /// Total replica failures of this logical process observed inside
    /// sections (a crash spanning several sections counts once per section
    /// that observed it).
    pub fn total_replica_failures_observed(&self) -> usize {
        self.view().total_replica_failures_observed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(start: f64, work_done: f64, end: f64) -> SectionReport {
        SectionReport {
            section_index: 0,
            num_tasks: 8,
            tasks_executed_locally: 4,
            tasks_received: 4,
            tasks_reexecuted: 0,
            update_bytes_sent: 100,
            update_bytes_received: 200,
            inout_snapshot_bytes: 0,
            replica_failures_observed: 0,
            start_time: SimTime::from_secs(start),
            local_work_done: SimTime::from_secs(work_done),
            end_time: SimTime::from_secs(end),
            task_costs: vec![
                TaskCostSample {
                    name: "t".into(),
                    occurrence: 0,
                    declared_weight: 1.0,
                    observed_seconds: 0.5,
                    executed_by: 0,
                    executed_locally: true,
                },
                TaskCostSample {
                    name: "t".into(),
                    occurrence: 1,
                    declared_weight: 1.0,
                    observed_seconds: 0.25,
                    executed_by: 1,
                    executed_locally: false,
                },
            ],
        }
    }

    #[test]
    fn section_time_breakdown() {
        let r = report(1.0, 3.0, 4.5);
        assert_eq!(r.total_time().as_secs(), 3.5);
        assert_eq!(r.local_work_time().as_secs(), 2.0);
        assert_eq!(r.update_drain_time().as_secs(), 1.5);
        assert_eq!(r.observed_task_seconds(), 0.75);
        assert_eq!(r.task_costs[1].key(), "t#1");
    }

    #[test]
    fn runtime_report_accumulates() {
        let mut rr = RuntimeReport::default();
        rr.push(report(0.0, 1.0, 2.0));
        rr.push(report(2.0, 2.5, 4.0));
        assert_eq!(rr.num_sections(), 2);
        assert_eq!(rr.total_section_time().as_secs(), 4.0);
        assert_eq!(rr.total_local_work_time().as_secs(), 1.5);
        assert_eq!(rr.total_update_drain_time().as_secs(), 2.5);
        assert_eq!(rr.total_update_bytes_sent(), 200);
        assert_eq!(rr.total_update_bytes_received(), 400);
        assert_eq!(rr.total_tasks_executed(), 8);
        assert_eq!(rr.total_tasks_reexecuted(), 0);
        assert_eq!(rr.total_tasks_received(), 8);
        assert_eq!(rr.total_replica_failures_observed(), 0);
        assert_eq!(rr.sections().len(), 2);
    }

    #[test]
    fn sections_view_aggregates_sub_ranges() {
        // The view is the shared aggregation arithmetic: summing a
        // sub-range (what the app driver's measured region does) must agree
        // with summing the parts.
        let sections = vec![report(0.0, 1.0, 2.0), report(2.0, 2.5, 4.0)];
        let all = SectionsView::new(&sections);
        let tail = SectionsView::new(&sections[1..]);
        assert_eq!(all.num_sections(), 2);
        assert_eq!(tail.num_sections(), 1);
        assert_eq!(tail.total_section_time().as_secs(), 2.0);
        assert_eq!(tail.total_update_drain_time().as_secs(), 1.5);
        assert_eq!(
            all.total_tasks_executed(),
            SectionsView::new(&sections[..1]).total_tasks_executed() + tail.total_tasks_executed()
        );
    }
}
