//! Paper-style API shim.
//!
//! The paper's Open MPI extension exposes four C functions:
//!
//! ```c
//! Intra_Section_begin();
//! id = Intra_Task_register(f_ptr, tag type arg, ...);
//! Intra_Task_launch(id, data_ptr, ...);
//! Intra_Section_end();
//! ```
//!
//! [`IntraSession`] mirrors that flow on top of the richer [`Section`] API:
//! task *types* are registered once with their function and argument tags,
//! then instantiated any number of times with concrete variable ranges and
//! scalar parameters.  The quickstart example and the waxpby test of
//! Section IV use this shim so the code reads like Figure 4 of the paper.

use crate::error::{IntraError, IntraResult};
use crate::report::SectionReport;
use crate::section::Section;
use crate::task::{ArgSpec, ArgTag, TaskCost, TaskDef, TaskFn};
use crate::workspace::VarId;
use std::ops::Range;
use std::sync::Arc;

/// Identifier returned by [`IntraSession::register_task`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskTypeId(usize);

struct TaskType {
    name: String,
    func: TaskFn,
    tags: Vec<ArgTag>,
}

/// A paper-style intra-parallel session wrapping an open [`Section`].
pub struct IntraSession<'a> {
    section: Section<'a>,
    types: Vec<TaskType>,
}

impl<'a> IntraSession<'a> {
    /// `Intra_Section_begin`: wraps an open section.
    pub fn begin(section: Section<'a>) -> Self {
        IntraSession {
            section,
            types: Vec::new(),
        }
    }

    /// `Intra_Task_register`: declares a task type from a function and the
    /// `in`/`out`/`inout` tags of its array arguments.
    pub fn register_task<F>(&mut self, name: &str, tags: Vec<ArgTag>, func: F) -> TaskTypeId
    where
        F: Fn(&mut crate::task::TaskCtx) + Send + Sync + 'static,
    {
        self.types.push(TaskType {
            name: name.to_string(),
            func: Arc::new(func),
            tags,
        });
        TaskTypeId(self.types.len() - 1)
    }

    /// `Intra_Task_launch`: instantiates a registered task type on concrete
    /// variable ranges (one per registered tag, in order) plus scalar
    /// parameters.
    pub fn launch_task(
        &mut self,
        id: TaskTypeId,
        bindings: Vec<(VarId, Range<usize>)>,
        scalars: Vec<f64>,
    ) -> IntraResult<()> {
        self.launch_task_with_cost(id, bindings, scalars, None)
    }

    /// [`IntraSession::launch_task`] with an explicit modeled compute cost.
    pub fn launch_task_with_cost(
        &mut self,
        id: TaskTypeId,
        bindings: Vec<(VarId, Range<usize>)>,
        scalars: Vec<f64>,
        cost: Option<TaskCost>,
    ) -> IntraResult<()> {
        let ty = self
            .types
            .get(id.0)
            .ok_or_else(|| IntraError::InvalidTask(format!("unknown task type id {}", id.0)))?;
        if bindings.len() != ty.tags.len() {
            return Err(IntraError::InvalidTask(format!(
                "task type '{}' declares {} array arguments but {} were bound",
                ty.name,
                ty.tags.len(),
                bindings.len()
            )));
        }
        let args = bindings
            .into_iter()
            .zip(ty.tags.iter())
            .map(|((var, range), &tag)| ArgSpec { var, range, tag })
            .collect();
        let mut task = TaskDef {
            name: ty.name.clone(),
            func: Arc::clone(&ty.func),
            args,
            scalars,
            cost,
        };
        if cost.is_none() {
            task.cost = None;
        }
        self.section.add_task(task)
    }

    /// Number of task instances launched so far.
    pub fn num_tasks(&self) -> usize {
        self.section.num_tasks()
    }

    /// `Intra_Section_end`: runs the work-sharing protocol.
    pub fn end(self) -> IntraResult<SectionReport> {
        self.section.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ArgTag;
    use crate::workspace::Workspace;

    // The session cannot execute without a cluster (that is covered by the
    // integration tests); here we only test the registration plumbing.
    #[test]
    fn launch_rejects_wrong_binding_count() {
        // Build a throwaway runtime on a single-process cluster to get a
        // Section; protocol execution is not triggered.
        let report = simmpi::run_cluster(&simmpi::ClusterConfig::ideal(1), |proc| {
            let env = replication::ReplicatedEnv::without_failures(
                proc,
                replication::ExecutionMode::Native,
            )
            .unwrap();
            let mut rt =
                crate::runtime::IntraRuntime::new(env, crate::runtime::IntraConfig::default());
            let mut ws = Workspace::new();
            let x = ws.add("x", vec![0.0; 4]);
            let mut session = IntraSession::begin(rt.section(&mut ws));
            let ty = session.register_task("t", vec![ArgTag::In, ArgTag::Out], |_| {});
            let err = session
                .launch_task(ty, vec![(x, 0..4)], vec![])
                .unwrap_err();
            matches!(err, IntraError::InvalidTask(_))
        });
        assert!(report.unwrap_results()[0]);
    }

    #[test]
    fn launch_rejects_unknown_type() {
        let report = simmpi::run_cluster(&simmpi::ClusterConfig::ideal(1), |proc| {
            let env = replication::ReplicatedEnv::without_failures(
                proc,
                replication::ExecutionMode::Native,
            )
            .unwrap();
            let mut rt =
                crate::runtime::IntraRuntime::new(env, crate::runtime::IntraConfig::default());
            let mut ws = Workspace::new();
            let _x = ws.add("x", vec![0.0; 4]);
            let mut session = IntraSession::begin(rt.section(&mut ws));
            session.launch_task(TaskTypeId(3), vec![], vec![]).is_err()
        });
        assert!(report.unwrap_results()[0]);
    }
}
