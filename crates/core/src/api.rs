//! Paper-style API shim with typed task handles.
//!
//! The paper's Open MPI extension exposes four C functions:
//!
//! ```c
//! Intra_Section_begin();
//! id = Intra_Task_register(f_ptr, tag type arg, ...);
//! Intra_Task_launch(id, data_ptr, ...);
//! Intra_Section_end();
//! ```
//!
//! [`IntraSession`] mirrors that flow on top of the richer [`Section`] API:
//! task *types* are registered once with their function and argument tags,
//! then instantiated any number of times with concrete variable ranges and
//! scalar parameters.
//!
//! Registration returns a [`TaskHandle<N>`] carrying the argument count `N`
//! in its type, so a launch with the wrong number of bindings is a compile
//! error rather than a runtime [`IntraError::InvalidTask`]; the single
//! [`IntraSession::launch`] entry point takes `impl Into<CostHint>`, so a
//! plain launch passes `()` and a modeled one passes a
//! [`TaskCost`](crate::task::TaskCost).  The quickstart
//! example and the waxpby test of Section IV use this shim so the code reads
//! like Figure 4 of the paper.

use crate::error::{IntraError, IntraResult};
use crate::report::SectionReport;
use crate::section::Section;
use crate::task::{ArgSpec, ArgTag, CostHint, TaskDef, TaskFn};
use crate::workspace::VarId;
use std::ops::Range;
use std::sync::Arc;

/// Typed handle to a registered task type.
///
/// The const parameter `N` is the number of array arguments the task type
/// declared at registration, so [`IntraSession::launch`] can demand exactly
/// `N` bindings at compile time — the binding-count mismatch that the
/// stringly API could only detect at launch cannot be expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a task handle is only useful for launching task instances"]
pub struct TaskHandle<const N: usize> {
    id: usize,
}

struct TaskType {
    name: String,
    func: TaskFn,
    tags: Vec<ArgTag>,
}

/// A paper-style intra-parallel session wrapping an open [`Section`].
pub struct IntraSession<'a> {
    section: Section<'a>,
    types: Vec<TaskType>,
}

impl<'a> IntraSession<'a> {
    /// `Intra_Section_begin`: wraps an open section.
    pub fn begin(section: Section<'a>) -> Self {
        IntraSession {
            section,
            types: Vec::new(),
        }
    }

    /// `Intra_Task_register`: declares a task type from a function and the
    /// `in`/`out`/`inout` tags of its array arguments, checking the argument
    /// arity at registration — the returned [`TaskHandle`] carries it in its
    /// type.
    pub fn register<const N: usize, F>(
        &mut self,
        name: &str,
        tags: [ArgTag; N],
        func: F,
    ) -> TaskHandle<N>
    where
        F: Fn(&mut crate::task::TaskCtx) + Send + Sync + 'static,
    {
        self.types.push(TaskType {
            name: name.to_string(),
            func: Arc::new(func),
            tags: tags.to_vec(),
        });
        TaskHandle {
            id: self.types.len() - 1,
        }
    }

    /// `Intra_Task_launch`: instantiates a registered task type on exactly
    /// `N` concrete variable ranges (one per registered tag, in order), plus
    /// scalar parameters and an optional modeled cost.
    ///
    /// The cost argument accepts anything [`CostHint`] converts from: `()`
    /// for no modeled cost, a [`TaskCost`](crate::task::TaskCost), or an
    /// `Option<TaskCost>`.
    pub fn launch<const N: usize>(
        &mut self,
        handle: TaskHandle<N>,
        bindings: [(VarId, Range<usize>); N],
        scalars: Vec<f64>,
        cost: impl Into<CostHint>,
    ) -> IntraResult<()> {
        self.launch_impl(
            handle.id,
            bindings.into_iter().collect(),
            scalars,
            cost.into(),
        )
    }

    fn launch_impl(
        &mut self,
        id: usize,
        bindings: Vec<(VarId, Range<usize>)>,
        scalars: Vec<f64>,
        cost: CostHint,
    ) -> IntraResult<()> {
        let ty = self
            .types
            .get(id)
            .ok_or_else(|| IntraError::InvalidTask(format!("unknown task type id {id}")))?;
        if bindings.len() != ty.tags.len() {
            return Err(IntraError::InvalidTask(format!(
                "task type '{}' declares {} array arguments but {} were bound",
                ty.name,
                ty.tags.len(),
                bindings.len()
            )));
        }
        let args = bindings
            .into_iter()
            .zip(ty.tags.iter())
            .map(|((var, range), &tag)| ArgSpec { var, range, tag })
            .collect();
        let task = TaskDef {
            name: ty.name.clone(),
            func: Arc::clone(&ty.func),
            args,
            scalars,
            cost: cost.into_cost(),
        };
        self.section.add_task(task)
    }

    /// Number of task instances launched so far.
    pub fn num_tasks(&self) -> usize {
        self.section.num_tasks()
    }

    /// `Intra_Section_end`: runs the work-sharing protocol.
    pub fn end(self) -> IntraResult<SectionReport> {
        self.section.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{ArgTag, TaskCost};
    use crate::workspace::Workspace;

    // The session cannot execute without a cluster (that is covered by the
    // integration tests); here we only test the registration plumbing.
    fn with_session<R: Send>(f: impl Fn(&mut IntraSession<'_>, VarId) -> R + Send + Sync) -> R {
        let report = simmpi::run_cluster(&simmpi::ClusterConfig::ideal(1), |proc| {
            let env = replication::ReplicatedEnv::without_failures(
                proc,
                replication::ExecutionMode::Native,
            )
            .unwrap();
            let mut rt =
                crate::runtime::IntraRuntime::new(env, crate::runtime::IntraConfig::default());
            let mut ws = Workspace::new();
            let x = ws.add("x", vec![0.0; 4]);
            let mut session = IntraSession::begin(rt.section(&mut ws));
            f(&mut session, x)
        });
        report.unwrap_results().pop().unwrap()
    }

    #[test]
    fn typed_launch_accepts_matching_bindings_and_cost_hints() {
        let ok = with_session(|session, x| {
            let copy = session.register("copy", [ArgTag::In, ArgTag::Out], |_| {});
            session
                .launch(copy, [(x, 0..2), (x, 2..4)], vec![], ())
                .unwrap();
            session
                .launch(
                    copy,
                    [(x, 0..2), (x, 2..4)],
                    vec![1.0],
                    TaskCost::new(1.0, 2.0),
                )
                .unwrap();
            session.num_tasks() == 2
        });
        assert!(ok);
    }
}
