//! The task workspace: named, replicated variables.
//!
//! The paper's API passes raw pointers to the variables a task reads and
//! writes.  The Rust equivalent used here is a [`Workspace`] of named `f64`
//! buffers; tasks reference sub-ranges of those buffers through
//! [`crate::task::ArgSpec`]s.  The workspace is the state that must be
//! identical on every replica of a logical process when a section starts and
//! when it ends (Definition 1 of the paper); the runtime ships the written
//! ranges ("updates") between replicas to re-establish that consistency.

use crate::error::{IntraError, IntraResult};
use std::ops::Range;

/// Identifier of a workspace variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The raw index of the variable (diagnostic).
    pub fn index(&self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
struct Var {
    name: String,
    data: Vec<f64>,
}

/// A set of named `f64` buffers shared with the replicas of this logical
/// process.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    vars: Vec<Var>,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable and returns its id.
    pub fn add(&mut self, name: &str, data: Vec<f64>) -> VarId {
        self.vars.push(Var {
            name: name.to_string(),
            data,
        });
        VarId(self.vars.len() - 1)
    }

    /// Adds a zero-initialized variable of length `len`.
    pub fn add_zeros(&mut self, name: &str, len: usize) -> VarId {
        self.add(name, vec![0.0; len])
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Name of a variable.
    pub fn name(&self, id: VarId) -> &str {
        &self.vars[id.0].name
    }

    /// Length (in elements) of a variable.
    pub fn len(&self, id: VarId) -> usize {
        self.vars[id.0].data.len()
    }

    /// True if the workspace has no variables.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Read access to a variable.
    pub fn get(&self, id: VarId) -> &[f64] {
        &self.vars[id.0].data
    }

    /// Write access to a variable.
    pub fn get_mut(&mut self, id: VarId) -> &mut [f64] {
        &mut self.vars[id.0].data
    }

    /// Replaces the contents of a variable (length may change).
    pub fn replace(&mut self, id: VarId, data: Vec<f64>) {
        self.vars[id.0].data = data;
    }

    /// Removes the variable's contents, returning them (the variable stays
    /// registered with an empty buffer).
    pub fn take(&mut self, id: VarId) -> Vec<f64> {
        std::mem::take(&mut self.vars[id.0].data)
    }

    /// Validates that `range` lies within variable `id`.
    pub fn check_range(&self, id: VarId, range: &Range<usize>) -> IntraResult<()> {
        if id.0 >= self.vars.len() {
            return Err(IntraError::InvalidVariable(format!(
                "variable id {} out of range ({} vars)",
                id.0,
                self.vars.len()
            )));
        }
        let len = self.vars[id.0].data.len();
        if range.start > range.end || range.end > len {
            return Err(IntraError::InvalidVariable(format!(
                "range {}..{} out of bounds for variable '{}' of length {len}",
                range.start, range.end, self.vars[id.0].name
            )));
        }
        Ok(())
    }

    /// Copies a sub-range of a variable into a new vector.
    pub fn read_range(&self, id: VarId, range: Range<usize>) -> Vec<f64> {
        self.vars[id.0].data[range].to_vec()
    }

    /// Overwrites a sub-range of a variable.
    ///
    /// # Panics
    /// Panics if the lengths do not match.
    pub fn write_range(&mut self, id: VarId, range: Range<usize>, values: &[f64]) {
        let dst = &mut self.vars[id.0].data[range];
        assert_eq!(dst.len(), values.len(), "write_range length mismatch");
        dst.copy_from_slice(values);
    }

    /// A content fingerprint used by tests to check that two replicas hold
    /// identical workspaces (order-sensitive sum of value bits).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for var in &self.vars {
            for &v in &var.data {
                h ^= v.to_bits();
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h ^= var.data.len() as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_and_access_variables() {
        let mut ws = Workspace::new();
        assert!(ws.is_empty());
        let x = ws.add("x", vec![1.0, 2.0, 3.0]);
        let y = ws.add_zeros("y", 2);
        assert_eq!(ws.num_vars(), 2);
        assert_eq!(ws.name(x), "x");
        assert_eq!(ws.len(y), 2);
        assert_eq!(ws.get(x), &[1.0, 2.0, 3.0]);
        ws.get_mut(y)[1] = 5.0;
        assert_eq!(ws.get(y), &[0.0, 5.0]);
    }

    #[test]
    fn range_read_write_round_trip() {
        let mut ws = Workspace::new();
        let x = ws.add("x", vec![0.0; 6]);
        ws.write_range(x, 2..5, &[7.0, 8.0, 9.0]);
        assert_eq!(ws.read_range(x, 1..6), vec![0.0, 7.0, 8.0, 9.0, 0.0]);
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // a reversed range must be rejected
    fn check_range_validates_bounds() {
        let mut ws = Workspace::new();
        let x = ws.add("x", vec![0.0; 4]);
        assert!(ws.check_range(x, &(0..4)).is_ok());
        assert!(ws.check_range(x, &(2..2)).is_ok());
        assert!(ws.check_range(x, &(0..5)).is_err());
        assert!(ws.check_range(x, &(3..2)).is_err());
        assert!(ws.check_range(VarId(9), &(0..1)).is_err());
    }

    #[test]
    fn replace_and_take() {
        let mut ws = Workspace::new();
        let x = ws.add("x", vec![1.0]);
        ws.replace(x, vec![2.0, 3.0]);
        assert_eq!(ws.len(x), 2);
        let data = ws.take(x);
        assert_eq!(data, vec![2.0, 3.0]);
        assert_eq!(ws.len(x), 0);
    }

    #[test]
    fn fingerprint_distinguishes_contents() {
        let mut a = Workspace::new();
        a.add("x", vec![1.0, 2.0]);
        let mut b = Workspace::new();
        b.add("x", vec![1.0, 2.0]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.get_mut(VarId(0))[0] = 1.5;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    proptest! {
        #[test]
        fn write_then_read_returns_what_was_written(
            values in proptest::collection::vec(-1e6f64..1e6, 1..64),
            offset in 0usize..16,
        ) {
            let mut ws = Workspace::new();
            let total = values.len() + offset + 3;
            let x = ws.add("x", vec![0.0; total]);
            ws.write_range(x, offset..offset + values.len(), &values);
            prop_assert_eq!(ws.read_range(x, offset..offset + values.len()), values);
        }
    }
}
