//! Tasks: the unit of work shared between replicas.
//!
//! A task is "a block of instructions executed sequentially by a physical
//! process" (Definition 2).  It reads and writes sub-ranges of workspace
//! variables, declared with `in` / `out` / `inout` tags exactly like the
//! parameters of the paper's `Intra_Task_register`.  All `out` and `inout`
//! ranges are transferred to the other replicas after the task executes; all
//! `inout` ranges are snapshotted when the task is instantiated so the task
//! can be re-executed safely after a partial update (Section III-B2,
//! Figure 2c).

use crate::error::{IntraError, IntraResult};
use crate::workspace::{VarId, Workspace};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// Access mode of one task argument (the paper's `in` / `out` / `inout`
/// tags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArgTag {
    /// Read-only: not shipped to the other replicas.
    In,
    /// Write-only: fully written by the task, shipped to the other replicas.
    Out,
    /// Read and written: shipped to the other replicas *and* snapshotted at
    /// instantiation time so re-execution after a failure starts from the
    /// correct value.
    InOut,
}

impl ArgTag {
    /// True if the argument is written by the task (and therefore shipped).
    pub fn is_output(self) -> bool {
        matches!(self, ArgTag::Out | ArgTag::InOut)
    }

    /// True if the argument is read by the task.
    pub fn is_input(self) -> bool {
        matches!(self, ArgTag::In | ArgTag::InOut)
    }
}

/// One task argument: a tagged sub-range of a workspace variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgSpec {
    /// The workspace variable.
    pub var: VarId,
    /// The element range of the variable accessed by the task.
    pub range: Range<usize>,
    /// Access mode.
    pub tag: ArgTag,
}

impl ArgSpec {
    /// Read-only argument covering `range` of `var`.
    pub fn input(var: VarId, range: Range<usize>) -> Self {
        ArgSpec {
            var,
            range,
            tag: ArgTag::In,
        }
    }

    /// Write-only argument covering `range` of `var`.
    pub fn output(var: VarId, range: Range<usize>) -> Self {
        ArgSpec {
            var,
            range,
            tag: ArgTag::Out,
        }
    }

    /// Read-write argument covering `range` of `var`.
    pub fn inout(var: VarId, range: Range<usize>) -> Self {
        ArgSpec {
            var,
            range,
            tag: ArgTag::InOut,
        }
    }

    /// Number of elements in the range.
    pub fn len(&self) -> usize {
        self.range.end - self.range.start
    }

    /// True if the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of bytes in the range.
    pub fn bytes(&self) -> usize {
        self.len() * std::mem::size_of::<f64>()
    }
}

/// Analytic compute cost of one task, charged to the virtual clock when the
/// task executes.  Applications derive it from `kernels::KernelCost` at the
/// *modeled* problem size; `None`-cost tasks only pay for their real
/// execution semantics (used in protocol-correctness tests).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TaskCost {
    /// Floating-point operations.
    pub flops: f64,
    /// Memory traffic in bytes (read + written).
    pub mem_bytes: f64,
}

impl TaskCost {
    /// Creates a cost descriptor.
    pub fn new(flops: f64, mem_bytes: f64) -> Self {
        TaskCost { flops, mem_bytes }
    }
}

/// What a task launch declares about its modeled compute cost.
///
/// The unified `launch` entry point of [`crate::api::IntraSession`] takes
/// `impl Into<CostHint>`, so call sites stay terse:
///
/// * `()` — no modeled cost: the task only pays for its real execution
///   semantics (protocol-correctness tests, toy examples);
/// * a [`TaskCost`] — charge the roofline time of the descriptor;
/// * an `Option<TaskCost>` — for code that threads an optional cost through.
///
/// # Examples
///
/// ```
/// use ipr_core::{CostHint, TaskCost};
///
/// assert_eq!(CostHint::from(()).into_cost(), None);
/// let cost = TaskCost::new(10.0, 80.0);
/// assert_eq!(CostHint::from(cost).into_cost(), Some(cost));
/// assert_eq!(CostHint::from(Some(cost)).into_cost(), Some(cost));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[must_use = "a CostHint does nothing until passed to a launch call"]
pub struct CostHint(Option<TaskCost>);

impl CostHint {
    /// No modeled cost: charge nothing to the virtual clock.
    pub const NONE: CostHint = CostHint(None);

    /// A modeled cost descriptor.
    pub fn modeled(cost: TaskCost) -> Self {
        CostHint(Some(cost))
    }

    /// The cost carried by the hint, if any.
    pub fn into_cost(self) -> Option<TaskCost> {
        self.0
    }
}

impl From<()> for CostHint {
    fn from((): ()) -> Self {
        CostHint::NONE
    }
}

impl From<TaskCost> for CostHint {
    fn from(cost: TaskCost) -> Self {
        CostHint::modeled(cost)
    }
}

impl From<Option<TaskCost>> for CostHint {
    fn from(cost: Option<TaskCost>) -> Self {
        CostHint(cost)
    }
}

/// The execution context handed to a task body.
///
/// Inputs and outputs are exposed as owned buffers so that a task can borrow
/// an input and an output simultaneously without fighting the borrow
/// checker; the runtime copies the relevant workspace ranges in before the
/// call and writes the output buffers back afterwards (those copies are an
/// implementation artifact of the safe API and are not charged to the
/// virtual clock — only the `inout` snapshot mandated by the paper is).
///
/// * `inputs[i]` is the i-th `In` argument (in declaration order);
/// * `outputs[j]` is the j-th `Out` or `InOut` argument (in declaration
///   order), pre-filled with the current value of the range;
/// * `scalars[k]` are the scalar parameters passed at launch time.
#[derive(Debug, Default)]
pub struct TaskCtx {
    /// Read-only argument buffers (declaration order of `In` args).
    pub inputs: Vec<Vec<f64>>,
    /// Writable argument buffers (declaration order of `Out`/`InOut` args).
    pub outputs: Vec<Vec<f64>>,
    /// Scalar parameters.
    pub scalars: Vec<f64>,
}

impl TaskCtx {
    /// Scalar parameter `k` rounded to a `usize` (for sizes and offsets).
    pub fn scalar_usize(&self, k: usize) -> usize {
        self.scalars[k].round() as usize
    }
}

/// The body of a task.
pub type TaskFn = Arc<dyn Fn(&mut TaskCtx) + Send + Sync>;

/// A fully specified task instance, ready to be scheduled on a replica.
#[derive(Clone)]
pub struct TaskDef {
    /// Human-readable name (diagnostics and reports).
    pub name: String,
    /// The code to execute.
    pub func: TaskFn,
    /// Tagged variable ranges accessed by the task.
    pub args: Vec<ArgSpec>,
    /// Scalar parameters forwarded to the body.
    pub scalars: Vec<f64>,
    /// Modeled compute cost (None = charge nothing).
    pub cost: Option<TaskCost>,
}

impl fmt::Debug for TaskDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskDef")
            .field("name", &self.name)
            .field("args", &self.args)
            .field("scalars", &self.scalars)
            .field("cost", &self.cost)
            .finish_non_exhaustive()
    }
}

impl TaskDef {
    /// Creates a task with the given name, body and arguments.
    pub fn new<F>(name: &str, func: F, args: Vec<ArgSpec>) -> Self
    where
        F: Fn(&mut TaskCtx) + Send + Sync + 'static,
    {
        TaskDef {
            name: name.to_string(),
            func: Arc::new(func),
            args,
            scalars: Vec::new(),
            cost: None,
        }
    }

    /// Attaches scalar parameters.
    pub fn with_scalars(mut self, scalars: Vec<f64>) -> Self {
        self.scalars = scalars;
        self
    }

    /// Attaches a modeled compute cost.
    pub fn with_cost(mut self, cost: TaskCost) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Validates the argument ranges against a workspace.
    pub fn validate(&self, ws: &Workspace) -> IntraResult<()> {
        if self.args.is_empty() {
            return Err(IntraError::InvalidTask(format!(
                "task '{}' has no arguments",
                self.name
            )));
        }
        for arg in &self.args {
            ws.check_range(arg.var, &arg.range)?;
        }
        Ok(())
    }

    /// Total number of bytes of `out`/`inout` data this task ships to the
    /// other replicas.
    pub fn update_bytes(&self) -> usize {
        self.args
            .iter()
            .filter(|a| a.tag.is_output())
            .map(ArgSpec::bytes)
            .sum()
    }

    /// Total number of bytes of `inout` data that must be snapshotted when
    /// the task is instantiated.
    pub fn inout_bytes(&self) -> usize {
        self.args
            .iter()
            .filter(|a| a.tag == ArgTag::InOut)
            .map(ArgSpec::bytes)
            .sum()
    }

    /// Relative compute weight used by cost-aware schedulers (falls back to
    /// the update size when no cost was provided).
    pub fn weight(&self) -> f64 {
        match self.cost {
            Some(c) => c.flops.max(c.mem_bytes),
            None => self.update_bytes().max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> TaskDef {
        TaskDef::new("noop", |_ctx| {}, vec![])
    }

    #[test]
    fn arg_tags_classify_inputs_and_outputs() {
        assert!(ArgTag::In.is_input() && !ArgTag::In.is_output());
        assert!(!ArgTag::Out.is_input() && ArgTag::Out.is_output());
        assert!(ArgTag::InOut.is_input() && ArgTag::InOut.is_output());
    }

    #[test]
    fn arg_spec_constructors_and_sizes() {
        let v = VarId(0);
        let a = ArgSpec::input(v, 0..10);
        assert_eq!(a.tag, ArgTag::In);
        assert_eq!(a.len(), 10);
        assert_eq!(a.bytes(), 80);
        assert!(!a.is_empty());
        assert!(ArgSpec::output(v, 3..3).is_empty());
        assert_eq!(ArgSpec::inout(v, 0..2).tag, ArgTag::InOut);
    }

    #[test]
    fn update_and_inout_bytes() {
        let v = VarId(0);
        let t = TaskDef::new(
            "t",
            |_| {},
            vec![
                ArgSpec::input(v, 0..100),
                ArgSpec::output(v, 100..150),
                ArgSpec::inout(v, 150..160),
            ],
        );
        assert_eq!(t.update_bytes(), (50 + 10) * 8);
        assert_eq!(t.inout_bytes(), 10 * 8);
    }

    #[test]
    fn validation_rejects_bad_ranges_and_empty_tasks() {
        let mut ws = Workspace::new();
        let x = ws.add("x", vec![0.0; 8]);
        let ok = TaskDef::new("ok", |_| {}, vec![ArgSpec::input(x, 0..8)]);
        assert!(ok.validate(&ws).is_ok());
        let bad = TaskDef::new("bad", |_| {}, vec![ArgSpec::input(x, 0..9)]);
        assert!(bad.validate(&ws).is_err());
        assert!(noop().validate(&ws).is_err());
    }

    #[test]
    fn weight_prefers_explicit_cost() {
        let v = VarId(0);
        let t = TaskDef::new("t", |_| {}, vec![ArgSpec::output(v, 0..10)]);
        assert_eq!(t.weight(), 80.0);
        let t = t.with_cost(TaskCost::new(1000.0, 500.0));
        assert_eq!(t.weight(), 1000.0);
    }

    #[test]
    fn task_ctx_scalar_helpers() {
        let ctx = TaskCtx {
            inputs: vec![],
            outputs: vec![],
            scalars: vec![3.0, 7.9],
        };
        assert_eq!(ctx.scalar_usize(0), 3);
        assert_eq!(ctx.scalar_usize(1), 8);
    }

    #[test]
    fn debug_impl_mentions_name() {
        let t = noop();
        assert!(format!("{t:?}").contains("noop"));
    }
}
