//! Workspace-level integration tests: exercise the whole stack (simulated
//! cluster → MPI → replication → intra-parallelization → application kernels)
//! through the facade crate, the way a downstream user would.

use intra_replication::prelude::*;
use kernels::vecops;

#[test]
fn facade_reexports_every_layer() {
    // simcluster
    let machine = MachineModel::grid5000_ib20g();
    assert!(machine.inter_node.bandwidth_bytes_per_s > 1e9);
    // simmpi + replication + core through a tiny end-to-end run.
    let report = run_cluster(&ClusterConfig::ideal(2), |proc| {
        let env = ReplicatedEnv::without_failures(proc, ExecutionMode::IntraParallel { degree: 2 })
            .unwrap();
        let mut rt = IntraRuntime::new(env, IntraConfig::paper());
        let mut ws = Workspace::new();
        let x = ws.add("x", vec![3.0; 32]);
        let w = ws.add_zeros("w", 32);
        let mut section = rt.section(&mut ws);
        section
            .add_split(32, |chunk| {
                TaskDef::new(
                    "copy",
                    |c| c.outputs[0].copy_from_slice(&c.inputs[0]),
                    vec![ArgSpec::input(x, chunk.clone()), ArgSpec::output(w, chunk)],
                )
            })
            .unwrap();
        let _ = section.end().unwrap();
        vecops::grid_sum(ws.get(w))
    });
    for sum in report.unwrap_results() {
        assert_eq!(sum, 96.0);
    }
}

#[test]
fn efficiency_ordering_matches_the_paper_headline() {
    // The headline claim of the paper: on compute-intensive kernels,
    // intra-parallelization breaks the 50% efficiency wall of replication.
    // Reproduce it end to end with the ddot kernel on a realistic machine.
    let kernel_time = |mode: ExecutionMode| -> f64 {
        let degree = mode.degree();
        let procs = 4;
        let machine = MachineModel::grid5000_ib20g();
        let topology = if degree > 1 {
            Topology::replica_disjoint(procs / degree, degree, machine.cores_per_node)
        } else {
            Topology::block(procs, machine.cores_per_node)
        };
        let config = ClusterConfig::new(procs)
            .with_machine(machine)
            .with_topology(topology);
        let actual_n = 1 << 10;
        let modeled_n = (1 << 21) * degree; // paper-scale vector, doubled with replication
        let report = run_cluster(&config, move |proc| {
            let env = ReplicatedEnv::without_failures(proc, mode).unwrap();
            let cfg = IntraConfig::paper().with_modeled_scale(modeled_n as f64 / actual_n as f64);
            let tasks = cfg.tasks_per_section;
            let mut rt = IntraRuntime::new(env, cfg);
            let mut ws = Workspace::new();
            let x = ws.add("x", vec![1.0; actual_n]);
            let partial = ws.add_zeros("partial", tasks);
            let cost = kernels::vecops::ddot_cost(modeled_n / tasks);
            let mut section = rt.section(&mut ws);
            for (t, chunk) in split_ranges(actual_n, tasks).into_iter().enumerate() {
                section
                    .add_task(
                        TaskDef::new(
                            "ddot",
                            |c| {
                                c.outputs[0][0] = c.inputs[0].iter().map(|v| v * v).sum::<f64>();
                            },
                            vec![ArgSpec::input(x, chunk), ArgSpec::output(partial, t..t + 1)],
                        )
                        .with_cost(TaskCost::new(cost.flops, cost.mem_bytes())),
                    )
                    .unwrap();
            }
            section.end().unwrap().total_time().as_secs()
        });
        let times = report.unwrap_results();
        times.iter().sum::<f64>() / times.len() as f64
    };

    let t_native = kernel_time(ExecutionMode::Native);
    let t_replicated = kernel_time(ExecutionMode::Replicated { degree: 2 });
    let t_intra = kernel_time(ExecutionMode::IntraParallel { degree: 2 });

    let eff_replicated = t_native / t_replicated;
    let eff_intra = t_native / t_intra;
    assert!(
        (eff_replicated - 0.5).abs() < 0.05,
        "plain replication must sit at the 50% wall, got {eff_replicated:.2}"
    );
    assert!(
        eff_intra > 0.9,
        "intra-parallelized ddot must get close to 100%, got {eff_intra:.2}"
    );
}

#[test]
fn kernel_costs_drive_task_weights_end_to_end() {
    // Cost descriptors flow from the kernels crate into the runtime and are
    // charged to the virtual clock.
    let cost = kernels::sparse::spmv_cost(1000, 27_000);
    let report = run_cluster(&ClusterConfig::new(1), move |proc| {
        let env = ReplicatedEnv::without_failures(proc.clone(), ExecutionMode::Native).unwrap();
        let mut rt = IntraRuntime::new(env, IntraConfig::paper());
        let mut ws = Workspace::new();
        let w = ws.add_zeros("w", 8);
        let before = proc.now();
        let mut section = rt.section(&mut ws);
        section
            .add_task(
                TaskDef::new(
                    "noop",
                    |c| c.outputs[0][0] = 1.0,
                    vec![ArgSpec::output(w, 0..8)],
                )
                .with_cost(TaskCost::new(cost.flops, cost.mem_bytes())),
            )
            .unwrap();
        let _ = section.end().unwrap();
        (proc.now() - before).as_secs()
    });
    let elapsed = report.unwrap_results()[0];
    // 27k nnz at a few GB/s of memory bandwidth: around 0.1 ms of virtual time.
    assert!(elapsed > 1e-5, "cost was not charged (elapsed {elapsed})");
}

#[test]
fn replicas_of_an_application_survive_injected_failures() {
    use apps::{run_minighost, MiniGhostParams};
    let run = Experiment::builder()
        .app(AppId::MiniGhost)
        .mode(Mode::IntraReplication)
        .logical_procs(2)
        .inject_failure(2, ProtocolPoint::IterationStart { iteration: 1 })
        .build()
        .unwrap()
        .run_with(|ctx| {
            let params = MiniGhostParams::small(5, 4);
            run_minighost(ctx, &params)
        })
        .unwrap();
    // Physical rank 2 crashed; the others finished with a finite checksum.
    assert!(run.results[2].is_err());
    assert_eq!(run.failure_events, 1);
    for rank in [0usize, 1, 3] {
        let out = run.results[rank].as_ref().unwrap();
        assert!(out.last_sum.is_finite());
    }
}

#[test]
fn experiment_facade_runs_every_mode_end_to_end() {
    // The same typed experiment, swept over the mode axis: native completes
    // on every rank, and both replicated modes complete on twice as many.
    for (mode, expected_procs) in [
        (Mode::NoReplication, 2),
        (Mode::Replication, 4),
        (Mode::IntraReplication, 4),
    ] {
        let experiment = Experiment::builder()
            .app(AppId::Hpccg)
            .scale(ExperimentScale::Tiny)
            .mode(mode)
            .build()
            .unwrap();
        assert_eq!(experiment.procs(), expected_procs, "{mode}");
        let report = experiment.run().unwrap();
        assert_eq!(report.procs, expected_procs, "{mode}");
        assert_eq!(report.completed(), expected_procs, "{mode}");
        assert_eq!(report.crashed() + report.errored(), 0, "{mode}");
        assert_eq!(report.failure_events, 0, "{mode}");
        assert!(report.makespan_s > 0.0, "{mode}");
        assert!(report.app_time_s() > 0.0, "{mode}");
        // Only the work-sharing mode receives peer task results.
        if mode == Mode::IntraReplication {
            assert!(report.tasks_received() > 0);
        } else {
            assert_eq!(report.tasks_received(), 0, "{mode}");
        }
    }
}

#[test]
fn experiment_runs_are_deterministic_and_seed_sensitive() {
    let experiment = |seed: u64| {
        Experiment::builder()
            .app(AppId::Gtc)
            .scale(ExperimentScale::Tiny)
            .mode(Mode::IntraReplication)
            .failures(FailurePlan::poisson(2.0))
            .seed(seed)
            .build()
            .unwrap()
    };
    let strip = |report: intra_replication::RunReport| {
        (
            report.makespan_s,
            report.ranks,
            report.failure_events,
            report.procs,
        )
    };
    let a = strip(experiment(43).run().unwrap());
    let b = strip(experiment(43).run().unwrap());
    assert_eq!(a, b, "same seed, same everything (modulo wall clock)");
    let c = strip(experiment(44).run().unwrap());
    assert_ne!(a, c, "the seed drives the failure trace");
}
