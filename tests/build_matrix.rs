//! Workspace smoke matrix: every crate's headline entry point must run.
//!
//! One `run_cluster` round-trip per `ClusterConfig` preset, and one
//! intra-parallel section end-to-end per scheduler.  These tests guard the
//! build wiring itself — if a crate's public API or the facade re-exports
//! drift, this file is the first thing that stops compiling.

use std::sync::Arc;

use intra_replication::prelude::*;

/// Allreduce round-trip on a cluster built from the given config.
fn allreduce_round_trip(config: &ClusterConfig, procs: usize) {
    let report = run_cluster(config, |proc| {
        let world = proc.world();
        world.allreduce_sum_f64(world.rank() as f64).unwrap()
    });
    let expected = (procs * (procs - 1) / 2) as f64;
    for sum in report.unwrap_results() {
        assert_eq!(sum, expected);
    }
}

#[test]
fn cluster_preset_ideal_round_trips() {
    allreduce_round_trip(&ClusterConfig::ideal(4), 4);
}

#[test]
fn cluster_preset_default_machine_round_trips() {
    allreduce_round_trip(&ClusterConfig::new(4), 4);
}

#[test]
fn cluster_preset_grid5000_round_trips() {
    let machine = MachineModel::grid5000_ib20g();
    let cores = machine.cores_per_node;
    let config = ClusterConfig::new(4)
        .with_machine(machine)
        .with_topology(Topology::replica_disjoint(2, 2, cores));
    allreduce_round_trip(&config, 4);
}

#[test]
fn cluster_preset_ideal_compute_round_trips() {
    let config = ClusterConfig::new(2)
        .with_machine(MachineModel::ideal_compute_ib20g())
        .with_topology(Topology::one_per_node(2));
    allreduce_round_trip(&config, 2);
}

/// Runs one intra-parallel section (w = 2x over 64 elements, 8 tasks) with
/// the given scheduler on 2 replicas; both replicas must hold the full,
/// correct result.
fn section_round_trip(scheduler: Arc<dyn Scheduler>) {
    let name = scheduler.name();
    let report = run_cluster(&ClusterConfig::ideal(2), move |proc| {
        let env = ReplicatedEnv::without_failures(proc, ExecutionMode::IntraParallel { degree: 2 })
            .unwrap();
        let config = IntraConfig::paper()
            .with_tasks_per_section(8)
            .with_scheduler(Arc::clone(&scheduler));
        let mut rt = IntraRuntime::new(env, config);
        let mut ws = Workspace::new();
        let x = ws.add("x", (0..64).map(|i| i as f64).collect());
        let w = ws.add_zeros("w", 64);
        let mut section = rt.section(&mut ws);
        section
            .add_split(64, |chunk| {
                TaskDef::new(
                    "double",
                    |c| {
                        for i in 0..c.inputs[0].len() {
                            c.outputs[0][i] = 2.0 * c.inputs[0][i];
                        }
                    },
                    vec![ArgSpec::input(x, chunk.clone()), ArgSpec::output(w, chunk)],
                )
            })
            .unwrap();
        let _ = section.end().unwrap();
        (ws.get(w).to_vec(), ws.fingerprint())
    });
    let results = report.unwrap_results();
    let mut fingerprints = Vec::new();
    for (w, fp) in results {
        for (i, v) in w.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f64, "scheduler {name}: w[{i}]");
        }
        fingerprints.push(fp);
    }
    assert!(
        fingerprints.windows(2).all(|p| p[0] == p[1]),
        "scheduler {name}: replicas disagree"
    );
}

#[test]
fn static_block_scheduler_section_round_trips() {
    section_round_trip(Arc::new(StaticBlockScheduler));
}

#[test]
fn round_robin_scheduler_section_round_trips() {
    section_round_trip(Arc::new(RoundRobinScheduler));
}

#[test]
fn cost_aware_scheduler_section_round_trips() {
    section_round_trip(Arc::new(CostAwareScheduler));
}

#[test]
fn adaptive_scheduler_section_round_trips() {
    section_round_trip(Arc::new(AdaptiveScheduler));
}

#[test]
fn locality_scheduler_section_round_trips() {
    section_round_trip(Arc::new(LocalityAwareScheduler));
}

#[test]
fn every_builtin_scheduler_kind_section_round_trips() {
    // `SchedulerKind` is the typed source of truth for scheduler selection
    // (the `Experiment` builder's scheduler axis); every kind must run.
    for kind in SchedulerKind::ALL {
        section_round_trip(kind.scheduler());
    }
}

/// One `Experiment::run` smoke per execution mode: the facade's unified
/// entry point must stay wired to every layer below it.
#[test]
fn experiment_builder_smoke_per_mode() {
    use intra_replication::{Experiment, Mode};
    for mode in [
        Mode::NoReplication,
        Mode::Replication,
        Mode::IntraReplication,
    ] {
        let report = Experiment::builder()
            .app(apps::AppId::Hpccg)
            .mode(mode)
            .build()
            .expect("valid experiment")
            .run()
            .expect("experiment executes");
        assert_eq!(report.completed(), report.procs, "{mode}");
    }
}

#[test]
fn every_crate_headline_symbol_is_reachable_via_facade() {
    // simcluster
    let _ = MachineModel::grid5000_ib20g();
    let _ = SimTime::ZERO;
    // simmpi
    let _ = ClusterConfig::ideal(1);
    // replication
    let _ = FailureInjector::none();
    let _ = ExecutionMode::Native;
    // ipr-core
    let _ = IntraConfig::paper();
    let _ = split_ranges(10, 3);
    let _ = SchedulerKind::StaticBlock;
    // kernels
    let _ = intra_replication::kernels::vecops::ddot_cost(1024);
    // apps (type-level: the constructor needs a live ProcHandle)
    let _ = intra_replication::apps::HpccgParams::small(4, 2);
    // facade experiment surface
    let _ = intra_replication::Experiment::builder();
    let _ = intra_replication::FailurePlan::none();
}
