//! End-to-end facade tests for the failure-model library: a correlated
//! node-level plan drawn through the typed [`Experiment`] builder kills a
//! whole co-located rank group, and replica-disjoint placement decides
//! whether the application survives it.

use intra_replication::prelude::*;

/// A (rate, seed) pair whose correlated node plan schedules exactly one
/// node-level event inside the horizon under the tiny HPCCG intra-2
/// topology: node 0 (physical ranks 0 and 1 — replica 0 of both logical
/// ranks) at t ≈ 0.12 virtual seconds.  The choice is deterministic, so the
/// assertions below can be exact.
const SINGLE_NODE_LOSS: (f64, u64) = (0.3, 45);

fn intra_with_node_plan() -> Experiment {
    let (rate, seed) = SINGLE_NODE_LOSS;
    Experiment::builder()
        .app(AppId::Hpccg)
        .scale(ExperimentScale::Tiny)
        .mode(Mode::IntraReplication)
        .failures(FailurePlan::node_failures(FailureRate::Constant(rate)))
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn a_single_node_loss_is_survivable_under_intra_replication() {
    let experiment = intra_with_node_plan();
    let topology = experiment.topology();
    let crashes = experiment.scheduled_crashes();

    // The pinned plan schedules exactly the ranks of node 0, all at the
    // same instant — a node event never kills a partial node.
    let lost_node = topology.node_of(crashes[0].0);
    let lost_ranks: Vec<usize> = crashes.iter().map(|&(r, _)| r).collect();
    assert_eq!(lost_ranks, topology.ranks_on(lost_node));
    assert!(crashes.iter().all(|&(_, at)| at == crashes[0].1));

    // Replica-disjoint placement puts the two replicas of each logical
    // rank on different nodes, so the lost node carries at most one
    // replica of anything.
    let report = experiment.run().unwrap();
    assert_eq!(report.crashed(), lost_ranks.len());
    assert_eq!(report.failure_events, lost_ranks.len());
    for (rank, outcome) in report.ranks.iter().enumerate() {
        if lost_ranks.contains(&rank) {
            assert!(
                matches!(outcome, RankOutcome::Crashed),
                "rank {rank} was on the lost node"
            );
        } else {
            assert!(
                outcome.report().is_some(),
                "rank {rank} was on a surviving node: {outcome:?}"
            );
        }
    }
    // Every logical rank still completed on its surviving replica.
    assert_eq!(report.completed(), experiment.logical_procs());
    assert!(report.makespan_s > 0.0);
}

#[test]
fn the_same_node_plan_is_fatal_without_replication() {
    // Same correlated node plan, hot enough that the first event lands
    // well before the application finishes; without replication it takes
    // the whole job down (the opt-in is required, see the builder tests).
    let (_, seed) = SINGLE_NODE_LOSS;
    let report = Experiment::builder()
        .app(AppId::Hpccg)
        .scale(ExperimentScale::Tiny)
        .mode(Mode::NoReplication)
        .failures(FailurePlan::node_failures(FailureRate::Constant(50.0)))
        .seed(seed)
        .allow_unrecoverable_failures()
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.completed(), 0, "no replicas, no survivors");
    assert!(report.crashed() >= 1);
    assert_eq!(report.crashed() + report.errored(), report.procs);
}

#[test]
fn correlated_experiments_are_deterministic_and_seed_sensitive() {
    let strip = |report: intra_replication::RunReport| {
        (report.makespan_s, report.failure_events, report.ranks)
    };
    let a = strip(intra_with_node_plan().run().unwrap());
    let b = strip(intra_with_node_plan().run().unwrap());
    assert_eq!(a, b, "same seed, same everything (modulo wall clock)");

    let (rate, seed) = SINGLE_NODE_LOSS;
    let other = Experiment::builder()
        .app(AppId::Hpccg)
        .scale(ExperimentScale::Tiny)
        .mode(Mode::IntraReplication)
        .failures(FailurePlan::node_failures(FailureRate::Constant(rate)))
        .seed(seed + 1)
        .build()
        .unwrap();
    let c = strip(other.run().unwrap());
    assert_ne!(a, c, "the seed drives the correlated event times");
}
