//! # intra-replication — work sharing between the replicas of MPI processes
//!
//! A Rust reproduction of *"Efficient Process Replication for MPI
//! Applications: Sharing Work Between Replicas"* (Ropars, Lefray, Kim,
//! Schiper — IPDPS 2015).
//!
//! This facade crate re-exports the whole workspace so that examples and
//! downstream users can depend on a single crate:
//!
//! * [`simcluster`] — machine model, virtual time, topology, failure board;
//! * [`simmpi`] — the in-process MPI-like runtime (communicators,
//!   point-to-point, collectives, cluster launcher);
//! * [`replication`] — active replication substrate (logical/replica
//!   communicators, failure injection, the failure-model library: fitted
//!   Weibull/LogNormal hazards, custom rate functions, correlated
//!   node/rack failure domains);
//! * [`ckpt`] — coordinated checkpoint/restart in virtual time: the
//!   Young/Daly optimal-interval formulas and the deterministic
//!   rollback-recovery replay the replication-vs-C/R comparison runs on;
//! * [`core`] (`ipr-core`) — **the paper's contribution**: intra-parallel
//!   sections, tasks, schedulers, update transfer, failure recovery;
//! * [`kernels`] — HPC kernels (waxpby, ddot, sparsemv, stencils, PIC) and
//!   their cost descriptors;
//! * [`apps`] — the mini-applications of the evaluation (HPCCG, AMG proxy,
//!   GTC proxy, MiniGhost proxy).
//!
//! ## The `Experiment` surface
//!
//! The whole stack is driven through one typed entry point, the
//! [`Experiment`] builder: application × scale × mode × scheduler ×
//! failure plan × seed, validated at [`ExperimentBuilder::build`] into
//! typed [`enum@Error`] values and executed with [`Experiment::run`]
//! (catalog applications) or [`Experiment::run_with`] (custom per-process
//! bodies).  The campaign engine, the figure harness and every example are
//! built on it.
//!
//! See `examples/quickstart.rs` for the shortest end-to-end program, the
//! `ipr-bench` crate for the harness that regenerates every figure of the
//! paper, and the `campaign` crate for declarative scenario sweeps with a
//! CI-grade regression gate (`examples/campaign_sweep.rs`).

#![warn(missing_docs)]

pub mod error;
pub mod experiment;

pub use apps;
pub use ckpt;
pub use ipr_core as core;
pub use kernels;
pub use replication;
pub use simcluster;
pub use simmpi;

pub use ckpt::{system_mtbf, CheckpointPlan, CkptStats, IntervalPolicy};
pub use error::{Error, Result};
pub use experiment::{
    CustomRun, Experiment, ExperimentBuilder, FailurePlan, Mode, RankOutcome, RunReport,
};

/// Convenience prelude pulling in the most commonly used items from every
/// layer.
pub mod prelude {
    pub use crate::error::Error;
    pub use crate::experiment::{
        CustomRun, Experiment, ExperimentBuilder, FailurePlan, Mode, RankOutcome, RunReport,
    };
    pub use apps::{AppContext, AppId, AppRunReport, AppWorkload, ExperimentScale};
    pub use ckpt::{system_mtbf, CheckpointPlan, CkptStats, IntervalPolicy};
    pub use ipr_core::prelude::*;
    pub use replication::{
        sample_failure_trace, CorrelatedPlan, ExecutionMode, FailureDomain, FailureInjector,
        FailureRate, ProtocolPoint, RateFn, ReplicatedEnv,
    };
    pub use simcluster::{MachineModel, SimTime, Topology};
    pub use simmpi::{run_cluster, ClusterConfig, Comm, MpiError, ProcHandle};
}
