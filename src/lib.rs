//! # intra-replication — work sharing between the replicas of MPI processes
//!
//! A Rust reproduction of *"Efficient Process Replication for MPI
//! Applications: Sharing Work Between Replicas"* (Ropars, Lefray, Kim,
//! Schiper — IPDPS 2015).
//!
//! This facade crate re-exports the whole workspace so that examples and
//! downstream users can depend on a single crate:
//!
//! * [`simcluster`] — machine model, virtual time, topology, failure board;
//! * [`simmpi`] — the in-process MPI-like runtime (communicators,
//!   point-to-point, collectives, cluster launcher);
//! * [`replication`] — active replication substrate (logical/replica
//!   communicators, failure injection, Poisson failure traces);
//! * [`core`] (`ipr-core`) — **the paper's contribution**: intra-parallel
//!   sections, tasks, schedulers, update transfer, failure recovery;
//! * [`kernels`] — HPC kernels (waxpby, ddot, sparsemv, stencils, PIC) and
//!   their cost descriptors;
//! * [`apps`] — the mini-applications of the evaluation (HPCCG, AMG proxy,
//!   GTC proxy, MiniGhost proxy).
//!
//! See `examples/quickstart.rs` for the shortest end-to-end program, the
//! `ipr-bench` crate for the harness that regenerates every figure of the
//! paper, and the `campaign` crate for declarative scenario sweeps with a
//! CI-grade regression gate (`examples/campaign_sweep.rs`).

#![warn(missing_docs)]

pub use apps;
pub use ipr_core as core;
pub use kernels;
pub use replication;
pub use simcluster;
pub use simmpi;

/// Convenience prelude pulling in the most commonly used items from every
/// layer.
pub mod prelude {
    pub use apps::{AppContext, AppRunReport};
    pub use ipr_core::prelude::*;
    pub use replication::{
        sample_failure_trace, ExecutionMode, FailureInjector, FailureRate, ProtocolPoint,
        ReplicatedEnv,
    };
    pub use simcluster::{MachineModel, SimTime, Topology};
    pub use simmpi::{run_cluster, ClusterConfig, Comm, MpiError, ProcHandle};
}
