//! The unified experiment surface: one typed builder for every scenario.
//!
//! Before this module existed the workspace exposed four disjoint, partly
//! stringly-typed entry points — `simmpi::run_cluster` + hand-built
//! topologies, the `IntraSession` shim, `apps::driver::with_scheduler`
//! with `Option<&str>` scheduler names, and the campaign `RunSpec` grid.
//! [`Experiment`] folds them into a single typed façade:
//!
//! ```
//! use intra_replication::{Experiment, FailurePlan, Mode};
//! use intra_replication::apps::{AppId, ExperimentScale};
//! use intra_replication::core::SchedulerKind;
//!
//! let report = Experiment::builder()
//!     .app(AppId::Hpccg)
//!     .scale(ExperimentScale::Tiny)
//!     .mode(Mode::IntraReplication)
//!     .scheduler(SchedulerKind::Adaptive)
//!     .failures(FailurePlan::poisson(0.5))
//!     .seed(43)
//!     .build()
//!     .expect("valid experiment")
//!     .run()
//!     .expect("run");
//! assert_eq!(report.procs, 4); // 2 logical ranks x 2 replicas at tiny scale
//! assert!(report.completed() + report.crashed() + report.errored() == report.procs);
//! ```
//!
//! Validation happens at [`ExperimentBuilder::build`] and produces typed
//! [`enum@Error`] values — an unknown application name, a zero replica
//! count or a failure plan without replication cannot reach the runtime.
//! The same `Experiment` value is what the campaign engine expands its
//! sweep grids into, what the bench harness runs its figures through, and
//! what the examples are written against, so a new scenario axis lands in
//! exactly one place.

use crate::error::{Error, Result};
use apps::{run_app, AppContext, AppId, AppRunReport, AppWorkload, ExperimentScale};
use ckpt::{system_mtbf, CheckpointPlan, CkptSession, CkptStats};
use ipr_core::{IntraConfig, IntraError, IntraResult, SchedulerKind};
use replication::{
    sample_failure_trace, CorrelatedPlan, ExecutionMode, FailureDomain, FailureInjector,
    FailureRate, ProtocolPoint,
};
use simcluster::{MachineModel, SimTime, Topology};
use simmpi::{run_cluster, ClusterConfig, ClusterReport};
use std::fmt;
use std::str::FromStr;

/// Replication mode of an experiment, without its degree (the degree is the
/// separate [`ExperimentBuilder::replicas`] axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Plain MPI: one physical process per logical rank, no fault
    /// tolerance ("Open MPI" in the paper's figures).
    NoReplication,
    /// Classic state-machine replication: every replica executes everything
    /// ("SDR-MPI").
    Replication,
    /// The paper's contribution: replicas share the work of intra-parallel
    /// sections ("intra").
    IntraReplication,
}

impl Mode {
    /// Compact label used in reports (`native` / `replicated` / `intra`,
    /// without the degree).
    pub fn label(self) -> &'static str {
        match self {
            Mode::NoReplication => "native",
            Mode::Replication => "replicated",
            Mode::IntraReplication => "intra",
        }
    }

    /// The degree this mode takes when none is configured explicitly.
    fn default_replicas(self) -> usize {
        match self {
            Mode::NoReplication => 1,
            Mode::Replication | Mode::IntraReplication => 2,
        }
    }

    /// Pairs the mode with a replication degree, yielding the low-level
    /// [`ExecutionMode`].
    pub fn with_replicas(self, replicas: usize) -> ExecutionMode {
        match self {
            Mode::NoReplication => ExecutionMode::Native,
            Mode::Replication => ExecutionMode::Replicated { degree: replicas },
            Mode::IntraReplication => ExecutionMode::IntraParallel { degree: replicas },
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl From<ExecutionMode> for Mode {
    fn from(mode: ExecutionMode) -> Self {
        match mode {
            ExecutionMode::Native => Mode::NoReplication,
            ExecutionMode::Replicated { .. } => Mode::Replication,
            ExecutionMode::IntraParallel { .. } => Mode::IntraReplication,
        }
    }
}

/// Failure behaviour of an experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailurePlan {
    /// No failures.
    None,
    /// Every physical rank draws its crash times from a Poisson process
    /// with the given intensity over `[0, horizon_s)` virtual seconds
    /// (deterministic per (run seed, rank); see
    /// [`replication::sample_failure_trace`]).
    Poisson {
        /// Intensity function of the arrival process.
        rate: FailureRate,
        /// Observation horizon in virtual seconds.
        horizon_s: f64,
    },
    /// Correlated failures: crash events are drawn per failure *domain
    /// group* (a node or a rack of the experiment's topology) and each
    /// event kills every rank co-located in the group at once
    /// (deterministic per (run seed, group); see
    /// [`replication::CorrelatedPlan`]).  This is the failure mode where
    /// replica placement matters: replica-disjoint placement survives any
    /// single-node loss.
    Correlated {
        /// What one event kills.
        domain: FailureDomain,
        /// Intensity function of the per-group event process.
        rate: FailureRate,
        /// Observation horizon in virtual seconds.
        horizon_s: f64,
    },
}

impl FailurePlan {
    /// Horizon used by the [`FailurePlan::poisson`] shorthand, in virtual
    /// seconds (covers a whole tiny-scale run).
    pub const DEFAULT_HORIZON_S: f64 = 1.0;

    /// No failures.
    pub fn none() -> Self {
        FailurePlan::None
    }

    /// Homogeneous Poisson crash arrivals at `rate` crashes per rank per
    /// virtual second over the default horizon.
    pub fn poisson(rate: f64) -> Self {
        FailurePlan::Poisson {
            rate: FailureRate::Constant(rate),
            horizon_s: Self::DEFAULT_HORIZON_S,
        }
    }

    /// Poisson crash arrivals with an explicit (possibly inhomogeneous)
    /// intensity function and horizon.
    pub fn poisson_process(rate: FailureRate, horizon_s: f64) -> Self {
        FailurePlan::Poisson { rate, horizon_s }
    }

    /// Correlated crash events at the given per-group intensity over the
    /// default horizon.
    pub fn correlated(domain: FailureDomain, rate: FailureRate) -> Self {
        FailurePlan::Correlated {
            domain,
            rate,
            horizon_s: Self::DEFAULT_HORIZON_S,
        }
    }

    /// Correlated crash events with an explicit intensity and horizon.
    pub fn correlated_process(domain: FailureDomain, rate: FailureRate, horizon_s: f64) -> Self {
        FailurePlan::Correlated {
            domain,
            rate,
            horizon_s,
        }
    }

    /// Node-level correlated failures: each event kills every rank of one
    /// node ([`FailurePlan::correlated`] with [`FailureDomain::Node`]).
    pub fn node_failures(rate: FailureRate) -> Self {
        Self::correlated(FailureDomain::Node, rate)
    }

    /// Rack-level correlated failures: each event kills every rank on one
    /// rack of `nodes_per_rack` consecutive nodes.
    pub fn rack_failures(nodes_per_rack: usize, rate: FailureRate) -> Self {
        Self::correlated(FailureDomain::Rack { nodes_per_rack }, rate)
    }

    /// True if the plan injects no failures.
    pub fn is_none(&self) -> bool {
        matches!(self, FailurePlan::None)
    }

    /// Compact label used in run ids and reports, e.g. `none`,
    /// `poisson-const-0.5-h2` or `corr-rack4-weibull-0.7-360-h1`.
    pub fn label(&self) -> String {
        match self {
            FailurePlan::None => "none".to_string(),
            FailurePlan::Poisson { rate, horizon_s } => {
                format!("poisson-{}-h{horizon_s}", rate.label())
            }
            FailurePlan::Correlated {
                domain,
                rate,
                horizon_s,
            } => format!("corr-{}-{}-h{horizon_s}", domain.label(), rate.label()),
        }
    }

    /// Parses the output of [`FailurePlan::label`].
    pub fn parse(s: &str) -> Option<Self> {
        if s == "none" {
            return Some(FailurePlan::None);
        }
        if let Some(rest) = s.strip_prefix("corr-") {
            let (domain_part, rest) = rest.split_once('-')?;
            let domain = FailureDomain::parse(domain_part)?;
            let h_at = rest.rfind("-h")?;
            let rate = FailureRate::parse(&rest[..h_at])?;
            let horizon_s = rest[h_at + 2..].parse::<f64>().ok()?;
            return Some(FailurePlan::Correlated {
                domain,
                rate,
                horizon_s,
            });
        }
        let rest = s.strip_prefix("poisson-")?;
        let h_at = rest.rfind("-h")?;
        let rate = FailureRate::parse(&rest[..h_at])?;
        let horizon_s = rest[h_at + 2..].parse::<f64>().ok()?;
        Some(FailurePlan::Poisson { rate, horizon_s })
    }
}

impl fmt::Display for FailurePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl FromStr for FailurePlan {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        FailurePlan::parse(s).ok_or_else(|| Error::InvalidSpec {
            what: "failure plan",
            input: s.to_string(),
        })
    }
}

/// One fully validated, runnable experiment: the typed product of every
/// scenario axis.  Built with [`Experiment::builder`]; executed with
/// [`Experiment::run`] (catalog applications) or [`Experiment::run_with`]
/// (custom per-process bodies).
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    app: AppId,
    scale: ExperimentScale,
    mode: Mode,
    replicas: usize,
    scheduler: SchedulerKind,
    failures: FailurePlan,
    seed: u64,
    logical_procs: Option<usize>,
    tasks_per_section: Option<usize>,
    modeled_scale: Option<f64>,
    machine: MachineModel,
    injections: Vec<(usize, ProtocolPoint)>,
    ckpt: Option<CheckpointPlan>,
}

impl Experiment {
    /// Starts building an experiment.  [`ExperimentBuilder::app`] (or
    /// [`ExperimentBuilder::app_named`]) is the only mandatory axis.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }

    /// The application under test.
    pub fn app(&self) -> AppId {
        self.app
    }

    /// The scale preset (process counts and problem sizes).
    pub fn scale(&self) -> ExperimentScale {
        self.scale
    }

    /// The replication mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The replication degree (1 for [`Mode::NoReplication`]).
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The scheduler used inside intra-parallel sections.
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// The failure behaviour.
    pub fn failures(&self) -> FailurePlan {
        self.failures
    }

    /// The seed of the run's deterministic randomness.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The coordinated checkpoint/restart plan, if any.
    pub fn ckpt(&self) -> Option<CheckpointPlan> {
        self.ckpt
    }

    /// The system MTBF the checkpoint interval policies resolve against,
    /// in virtual seconds: the failure plan's fitted per-stream event rate
    /// summed over its independent streams (physical ranks for a Poisson
    /// plan, failure groups for a correlated plan).  Infinite without a
    /// failure plan.
    pub fn system_mtbf_s(&self) -> f64 {
        match self.failures {
            FailurePlan::None => f64::INFINITY,
            FailurePlan::Poisson { rate, horizon_s } => system_mtbf(rate, horizon_s, self.procs()),
            FailurePlan::Correlated {
                domain,
                rate,
                horizon_s,
            } => system_mtbf(rate, horizon_s, domain.num_groups(&self.topology())),
        }
    }

    /// The low-level execution mode (mode + degree).
    pub fn execution_mode(&self) -> ExecutionMode {
        self.mode.with_replicas(self.replicas)
    }

    /// Number of logical processes the experiment simulates.
    pub fn logical_procs(&self) -> usize {
        self.logical_procs
            .unwrap_or_else(|| self.scale.fig6_logical_procs())
    }

    /// Number of physical processes the experiment simulates.
    pub fn procs(&self) -> usize {
        self.logical_procs() * self.replicas
    }

    /// The catalog workload the scale maps to.
    pub fn workload(&self) -> AppWorkload {
        AppWorkload {
            grid_edge: self.scale.actual_grid_edge(),
            particles: self.scale.actual_particles(),
            iterations: self.scale.app_iterations(),
        }
    }

    /// The intra-runtime configuration the experiment applies on every
    /// process (the paper's configuration plus the typed scheduler and the
    /// optional granularity / modeled-scale overrides).
    pub fn intra_config(&self) -> IntraConfig {
        let mut config = IntraConfig::paper().with_scheduler_kind(self.scheduler);
        if let Some(n) = self.tasks_per_section {
            config = config.with_tasks_per_section(n);
        }
        if let Some(s) = self.modeled_scale {
            config = config.with_modeled_scale(s);
        }
        config
    }

    /// The physical placement of the experiment: replica-disjoint when
    /// replicated (so replicas of one logical rank never share a node,
    /// mirroring the paper), block placement otherwise.
    pub fn topology(&self) -> Topology {
        if self.replicas > 1 {
            Topology::replica_disjoint(
                self.logical_procs(),
                self.replicas,
                self.machine.cores_per_node,
            )
        } else {
            Topology::block(self.procs(), self.machine.cores_per_node)
        }
    }

    /// The cluster configuration of the experiment: the paper's machine
    /// model (or the configured override), replica-disjoint placement when
    /// replicated, and the experiment seed.
    pub fn cluster_config(&self) -> ClusterConfig {
        ClusterConfig::new(self.procs())
            .with_machine(self.machine)
            .with_topology(self.topology())
            .with_seed(self.seed)
    }

    /// The canonical fingerprint material of the experiment: a versioned,
    /// deterministic rendering of every axis that can influence the run's
    /// deterministic results.  Two experiments produce byte-identical
    /// deterministic reports if (and, for the axes the builder exposes,
    /// only if) their materials are equal — this is what the campaign's
    /// content-addressed run cache hashes (together with the report schema
    /// version and the code-determinism epoch; see
    /// `campaign::cache::fingerprint`).
    ///
    /// The six grid axes always appear; builder-only overrides
    /// (`logical_procs`, `tasks_per_section`, `modeled_scale`, hand-placed
    /// injections) and a non-default machine model are appended only when
    /// set, so a grid-default experiment and its campaign-`RunSpec`
    /// round-tripped twin (the PR 5 lossless conversion) yield the same
    /// material.
    pub fn fingerprint_material(&self) -> String {
        use fmt::Write as _;
        let mut m = String::from("ipr-experiment/1");
        let _ = write!(
            m,
            "|app={}|scale={}|mode={}|replicas={}|scheduler={}|failures={}|seed={}",
            self.app.name(),
            self.scale.name(),
            self.mode.label(),
            self.replicas,
            self.scheduler,
            self.failures.label(),
            self.seed
        );
        if let Some(n) = self.logical_procs {
            let _ = write!(m, "|logical_procs={n}");
        }
        if let Some(n) = self.tasks_per_section {
            let _ = write!(m, "|tasks_per_section={n}");
        }
        if let Some(s) = self.modeled_scale {
            let _ = write!(m, "|modeled_scale={s}");
        }
        if self.machine != MachineModel::grid5000_ib20g() {
            let _ = write!(m, "|machine={:?}", self.machine);
        }
        if !self.injections.is_empty() {
            let _ = write!(m, "|injections={:?}", self.injections);
        }
        if let Some(plan) = self.ckpt {
            let _ = write!(m, "|ckpt={}", plan.label());
        }
        m
    }

    /// The timed crashes the failure plan schedules for this experiment,
    /// as `(physical rank, virtual crash time)` pairs — a pure function of
    /// the experiment axes (and in particular of the seed), computed
    /// without running anything.  Poisson plans contribute every arrival
    /// of each rank's trace; correlated plans contribute the first event
    /// of every failure group, expanded to the group's co-located ranks.
    /// Hand-placed [`ExperimentBuilder::inject_failure`] points are not
    /// timed and do not appear here.
    pub fn scheduled_crashes(&self) -> Vec<(usize, SimTime)> {
        match self.failures {
            FailurePlan::None => Vec::new(),
            FailurePlan::Poisson { rate, horizon_s } => {
                let horizon = SimTime::from_secs(horizon_s);
                (0..self.procs())
                    .flat_map(|rank| {
                        sample_failure_trace(rate, horizon, self.seed, rank)
                            .into_iter()
                            .map(move |at| (rank, at))
                    })
                    .collect()
            }
            FailurePlan::Correlated {
                domain,
                rate,
                horizon_s,
            } => CorrelatedPlan::new(domain, rate, SimTime::from_secs(horizon_s))
                .crashes(&self.topology(), self.seed),
        }
    }

    /// Runs the experiment's catalog application on the simulated cluster
    /// and aggregates the per-rank outcomes.
    pub fn run(&self) -> Result<RunReport> {
        let app = self.app;
        let workload = self.workload();
        Ok(self.run_report(move |ctx| run_app(ctx, app, &workload)))
    }

    /// Runs a custom per-process body instead of a catalog application —
    /// the escape hatch used by the bench harness figures and the examples
    /// that drive hand-built sections.  The experiment still owns the
    /// cluster setup (machine, topology, seed), the failure plan and the
    /// intra configuration; `body` receives the ready [`AppContext`].
    pub fn run_with<T, F>(&self, body: F) -> Result<CustomRun<T>>
    where
        T: Send,
        F: Fn(&mut AppContext) -> IntraResult<T> + Send + Sync,
    {
        let report = self.launch(body);
        let makespan_s = report.makespan().as_secs();
        let failure_events = report.failures.len();
        let results = report
            .results
            .into_iter()
            .map(|per_rank| match per_rank {
                Ok(Ok((value, _stats))) => Ok(value),
                Ok(Err(e)) => Err(Error::from(e)),
                Err(panic) => Err(Error::Config(format!("rank panicked: {panic}"))),
            })
            .collect();
        Ok(CustomRun {
            results,
            makespan_s,
            failure_events,
        })
    }

    /// Executes the catalog (or custom) body and folds the cluster report
    /// into a [`RunReport`].
    fn run_report<F>(&self, body: F) -> RunReport
    where
        F: Fn(&mut AppContext) -> IntraResult<AppRunReport> + Send + Sync,
    {
        let started = std::time::Instant::now();
        let report = self.launch(body);
        let makespan_s = report.makespan().as_secs();
        let failure_events = report.failures.len();
        let mut ckpt = None;
        let mut ranks = Vec::with_capacity(report.results.len());
        for per_rank in report.results {
            ranks.push(match per_rank {
                Ok(Ok((r, stats))) => {
                    // Every rank's session is advanced in lock-step, so the
                    // first completed rank's stats are the run's stats.
                    if ckpt.is_none() {
                        ckpt = stats;
                    }
                    RankOutcome::Completed(r)
                }
                Ok(Err(IntraError::Crashed)) => RankOutcome::Crashed,
                Ok(Err(e)) => RankOutcome::Failed(Error::from(e)),
                Err(panic) => RankOutcome::Panicked(panic),
            });
        }
        RunReport {
            procs: self.procs(),
            makespan_s,
            failure_events,
            ranks,
            ckpt,
            // Rounded to whole microseconds so renderings stay compact.
            wall_time_ms: (started.elapsed().as_secs_f64() * 1e6).round() / 1e3,
        }
    }

    /// The per-rank checkpoint session of this experiment, when it has a
    /// plan: a pure function of the axes, so every rank's copy is
    /// identical.
    fn ckpt_session(&self) -> Option<CkptSession> {
        let plan = self.ckpt.as_ref()?;
        let crashes: Vec<(usize, f64)> = self
            .scheduled_crashes()
            .into_iter()
            .map(|(rank, at)| (rank, at.as_secs()))
            .collect();
        Some(CkptSession::new(
            plan,
            self.system_mtbf_s(),
            &crashes,
            self.logical_procs(),
            self.replicas,
        ))
    }

    fn launch<T, F>(&self, body: F) -> ClusterReport<IntraResult<(T, Option<CkptStats>)>>
    where
        T: Send,
        F: Fn(&mut AppContext) -> IntraResult<T> + Send + Sync,
    {
        let config = self.cluster_config();
        let mode = self.execution_mode();
        let intra = self.intra_config();
        let injections = self.injections.clone();
        // Under a checkpoint plan the scheduled crashes are consumed by the
        // rollback-recovery replay (as restart + re-executed time) instead
        // of killing ranks, so the timed injector stays disarmed.
        let session = self.ckpt_session();
        let crashes = if session.is_some() {
            Vec::new()
        } else {
            self.scheduled_crashes()
        };
        run_cluster(&config, move |proc| {
            let injector = FailureInjector::none();
            for &(rank, at) in &crashes {
                if rank == proc.rank() {
                    injector.arm_at(rank, at);
                }
            }
            for &(rank, point) in &injections {
                if rank == proc.rank() {
                    injector.arm(rank, point);
                }
            }
            let mut ctx = AppContext::new(proc, mode, intra.clone(), injector)?;
            if let Some(session) = &session {
                ctx.set_checkpointing(session.clone());
            }
            let value = body(&mut ctx)?;
            let stats = ctx.finish_checkpointing()?;
            Ok((value, stats))
        })
    }
}

/// Builder for [`Experiment`]; validation happens in
/// [`ExperimentBuilder::build`] and yields typed [`enum@Error`] values.
#[derive(Debug, Clone, Default)]
#[must_use = "an ExperimentBuilder does nothing until build() is called"]
pub struct ExperimentBuilder {
    app: Option<AppId>,
    app_name: Option<String>,
    scale: Option<ExperimentScale>,
    scale_name: Option<String>,
    mode: Option<Mode>,
    replicas: Option<usize>,
    scheduler: Option<SchedulerKind>,
    failures: Option<FailurePlan>,
    seed: Option<u64>,
    logical_procs: Option<usize>,
    tasks_per_section: Option<usize>,
    modeled_scale: Option<f64>,
    machine: Option<MachineModel>,
    injections: Vec<(usize, ProtocolPoint)>,
    allow_unrecoverable_failures: bool,
    ckpt: Option<CheckpointPlan>,
}

impl ExperimentBuilder {
    /// Selects the application (mandatory; see also
    /// [`ExperimentBuilder::app_named`] for the CLI edge).
    pub fn app(mut self, app: AppId) -> Self {
        self.app = Some(app);
        self.app_name = None;
        self
    }

    /// Selects the application by its stable name (resolved at
    /// [`ExperimentBuilder::build`]; unknown names yield
    /// [`Error::UnknownApp`]).
    pub fn app_named(mut self, name: &str) -> Self {
        self.app_name = Some(name.to_string());
        self.app = None;
        self
    }

    /// Selects the scale preset (default: [`ExperimentScale::Tiny`]).
    pub fn scale(mut self, scale: ExperimentScale) -> Self {
        self.scale = Some(scale);
        self.scale_name = None;
        self
    }

    /// Selects the scale by name (`full` / `small` / `tiny`, resolved at
    /// build; unknown names yield [`Error::UnknownScale`]).
    pub fn scale_named(mut self, name: &str) -> Self {
        self.scale_name = Some(name.to_string());
        self.scale = None;
        self
    }

    /// Selects the replication mode (default: [`Mode::IntraReplication`]).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Sets the mode and degree together from a low-level [`ExecutionMode`].
    pub fn execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = Some(Mode::from(mode));
        self.replicas = Some(mode.degree());
        self
    }

    /// Sets the replication degree (default: 1 without replication, 2 with).
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.replicas = Some(replicas);
        self
    }

    /// Selects the section scheduler (default:
    /// [`SchedulerKind::StaticBlock`], the paper's).
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Sets the failure behaviour (default: [`FailurePlan::None`]).
    pub fn failures(mut self, failures: FailurePlan) -> Self {
        self.failures = Some(failures);
        self
    }

    /// Sets the seed of the run's deterministic randomness (default: 42,
    /// the cluster default).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Overrides the number of logical processes (default: the scale's
    /// application process count).
    pub fn logical_procs(mut self, n: usize) -> Self {
        self.logical_procs = Some(n);
        self
    }

    /// Overrides the number of tasks per intra-parallel section (default:
    /// the paper's 8).
    pub fn tasks_per_section(mut self, n: usize) -> Self {
        self.tasks_per_section = Some(n);
        self
    }

    /// Overrides the modeled-size scale factor of the intra runtime
    /// (default: 1.0; must be finite and positive).
    pub fn modeled_scale(mut self, scale: f64) -> Self {
        self.modeled_scale = Some(scale);
        self
    }

    /// Overrides the machine model (default: the paper's Grid'5000/IB-20G
    /// calibration).
    pub fn machine(mut self, machine: MachineModel) -> Self {
        self.machine = Some(machine);
        self
    }

    /// Arms a hand-placed crash: physical rank `rank` fails the first time
    /// it passes `point`.  Repeatable; composes with the failure plan.
    pub fn inject_failure(mut self, rank: usize, point: ProtocolPoint) -> Self {
        self.injections.push((rank, point));
        self
    }

    /// Enables coordinated checkpoint/restart: the failure plan's crashes
    /// are absorbed by rollback-recovery (restart cost plus re-executed
    /// work on every rank's virtual clock) instead of killing ranks, so a
    /// checkpointed [`Mode::NoReplication`] run with failures needs no
    /// [`ExperimentBuilder::allow_unrecoverable_failures`] opt-in.
    /// Composes with every replication mode — that pairing is exactly the
    /// paper's replication-vs-C/R efficiency comparison.  Incompatible
    /// with hand-placed [`ExperimentBuilder::inject_failure`] points
    /// (those are untimed and cannot be replayed).
    pub fn checkpointing(mut self, plan: CheckpointPlan) -> Self {
        self.ckpt = Some(plan);
        self
    }

    /// Opts into a failure plan without replication.  By default
    /// [`ExperimentBuilder::build`] rejects that combination with
    /// [`Error::UnrecoverableFailurePlan`] because an unreplicated rank
    /// cannot recover from any crash; campaigns measuring the unprotected
    /// baseline (how a native run dies) set this explicitly.
    pub fn allow_unrecoverable_failures(mut self) -> Self {
        self.allow_unrecoverable_failures = true;
        self
    }

    /// Validates the axes and produces the [`Experiment`].
    pub fn build(self) -> Result<Experiment> {
        let app = match (self.app, &self.app_name) {
            (Some(app), _) => app,
            (None, Some(name)) => {
                AppId::parse(name).ok_or_else(|| Error::UnknownApp(name.clone()))?
            }
            (None, None) => {
                return Err(Error::Config(
                    "no application selected (use .app(AppId::...) or .app_named(...))".into(),
                ))
            }
        };
        let scale = match (self.scale, &self.scale_name) {
            (Some(scale), _) => scale,
            (None, Some(name)) => {
                ExperimentScale::parse(name).ok_or_else(|| Error::UnknownScale(name.clone()))?
            }
            (None, None) => ExperimentScale::Tiny,
        };
        let mode = self.mode.unwrap_or(Mode::IntraReplication);
        let replicas = self.replicas.unwrap_or_else(|| mode.default_replicas());
        let valid_degree = match mode {
            Mode::NoReplication => replicas == 1,
            Mode::Replication | Mode::IntraReplication => replicas >= 2,
        };
        if !valid_degree {
            return Err(Error::InvalidReplicas { mode, replicas });
        }
        let failures = self.failures.unwrap_or(FailurePlan::None);
        // A checkpoint plan makes every crash recoverable (rollback instead
        // of rank death), so it lifts the native-mode opt-in requirement.
        if !failures.is_none()
            && mode == Mode::NoReplication
            && !self.allow_unrecoverable_failures
            && self.ckpt.is_none()
        {
            return Err(Error::UnrecoverableFailurePlan);
        }
        if let Some(plan) = self.ckpt {
            if !plan.is_valid() {
                return Err(Error::Config(format!(
                    "checkpoint plan parameters must be finite and positive, got {plan:?}"
                )));
            }
            if !self.injections.is_empty() {
                return Err(Error::Config(
                    "hand-placed inject_failure points cannot be combined with \
                     checkpointing (they are untimed and cannot be replayed)"
                        .into(),
                ));
            }
        }
        if self.logical_procs == Some(0) {
            return Err(Error::NoLogicalProcs);
        }
        if self.tasks_per_section == Some(0) {
            return Err(Error::Config("tasks_per_section must be at least 1".into()));
        }
        if let Some(scale_factor) = self.modeled_scale {
            if !scale_factor.is_finite() || scale_factor <= 0.0 {
                return Err(Error::Config(format!(
                    "modeled_scale must be finite and positive, got {scale_factor}"
                )));
            }
        }
        validate_failure_plan(&failures)?;
        Ok(Experiment {
            app,
            scale,
            mode,
            replicas,
            scheduler: self.scheduler.unwrap_or(SchedulerKind::StaticBlock),
            failures,
            seed: self.seed.unwrap_or(42),
            logical_procs: self.logical_procs,
            tasks_per_section: self.tasks_per_section,
            modeled_scale: self.modeled_scale,
            machine: self.machine.unwrap_or_else(MachineModel::grid5000_ib20g),
            injections: self.injections,
            ckpt: self.ckpt,
        })
    }
}

/// Rejects failure plans whose declared parameters are out of domain.
/// `FailureRate::max_rate` clamps to zero, so a negative or NaN rate would
/// otherwise silently sample an empty trace while the run id still
/// advertises the bogus parameters.
fn validate_failure_plan(failures: &FailurePlan) -> Result<()> {
    let (rate, horizon_s) = match *failures {
        FailurePlan::None => return Ok(()),
        FailurePlan::Poisson { rate, horizon_s } => (rate, horizon_s),
        FailurePlan::Correlated {
            domain,
            rate,
            horizon_s,
        } => {
            if let FailureDomain::Rack { nodes_per_rack } = domain {
                if nodes_per_rack == 0 {
                    return Err(Error::Config(
                        "correlated rack domain needs nodes_per_rack >= 1".into(),
                    ));
                }
            }
            (rate, horizon_s)
        }
    };
    if !horizon_s.is_finite() || horizon_s <= 0.0 {
        return Err(Error::Config(format!(
            "failure horizon must be finite and positive, got {horizon_s}"
        )));
    }
    let invalid = |r: f64| !r.is_finite() || r < 0.0;
    // Shape-like parameters must additionally be strictly positive: a
    // Weibull with shape or scale 0 (or a LogNormal with sigma 0) is not a
    // distribution.
    let invalid_pos = |r: f64| !r.is_finite() || r <= 0.0;
    let rate_invalid = match rate {
        FailureRate::Constant(r) => invalid(r),
        FailureRate::Ramp { start, end } => invalid(start) || invalid(end),
        FailureRate::Burst {
            base, peak, width, ..
        } => invalid(base) || invalid(peak) || invalid(width),
        FailureRate::Weibull { shape, scale_s } => invalid_pos(shape) || invalid_pos(scale_s),
        FailureRate::LogNormal { mu, sigma } => !mu.is_finite() || invalid_pos(sigma),
    };
    if rate_invalid {
        return Err(Error::Config(format!(
            "failure rate must be finite and within its parameter domain, got {rate:?}"
        )));
    }
    Ok(())
}

/// Per-rank outcome of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub enum RankOutcome {
    /// The rank completed the application and produced its report.
    Completed(AppRunReport),
    /// The rank crashed through failure injection.
    Crashed,
    /// The rank failed for any other reason (e.g. observing the unrecovered
    /// crash of a peer in an unreplicated run).
    Failed(Error),
    /// The rank's thread panicked (a bug, not a simulated failure).
    Panicked(String),
}

impl RankOutcome {
    /// The completed report, if the rank finished.
    pub fn report(&self) -> Option<&AppRunReport> {
        match self {
            RankOutcome::Completed(r) => Some(r),
            _ => None,
        }
    }
}

/// Aggregated result of [`Experiment::run`]: the per-rank outcomes plus the
/// cluster-level aggregates every consumer (campaign rows, figure tables,
/// examples) derives its numbers from.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a RunReport carries the experiment's results; dropping it silently loses them"]
pub struct RunReport {
    /// Physical processes simulated.
    pub procs: usize,
    /// Virtual makespan over the surviving ranks, in seconds.
    pub makespan_s: f64,
    /// Crash-stop failure events recorded by the cluster.
    pub failure_events: usize,
    /// Per-rank outcomes, in world-rank order.
    pub ranks: Vec<RankOutcome>,
    /// Checkpoint/restart accounting, when the experiment had a
    /// checkpoint plan (identical on every rank by construction).
    pub ckpt: Option<CkptStats>,
    /// Host wall-clock time the simulation took, in milliseconds.
    /// *Informational only*: the single non-deterministic field.
    pub wall_time_ms: f64,
}

impl RunReport {
    /// Iterates over the reports of the ranks that completed, in rank order.
    pub fn completed_reports(&self) -> impl Iterator<Item = &AppRunReport> {
        self.ranks.iter().filter_map(RankOutcome::report)
    }

    /// Ranks that completed the application.
    pub fn completed(&self) -> usize {
        self.completed_reports().count()
    }

    /// Ranks that crashed through failure injection.
    pub fn crashed(&self) -> usize {
        self.ranks
            .iter()
            .filter(|o| matches!(o, RankOutcome::Crashed))
            .count()
    }

    /// Ranks that failed for any other reason (including panics).
    pub fn errored(&self) -> usize {
        self.ranks
            .iter()
            .filter(|o| matches!(o, RankOutcome::Failed(_) | RankOutcome::Panicked(_)))
            .count()
    }

    /// Mean virtual time inside intra-parallel sections over completed
    /// ranks, in seconds.
    pub fn mean_section_s(&self) -> f64 {
        let sum: f64 = self
            .completed_reports()
            .map(|r| r.section_time.as_secs())
            .sum();
        sum / self.completed().max(1) as f64
    }

    /// Mean virtual update-drain time over completed ranks, in seconds.
    pub fn mean_update_drain_s(&self) -> f64 {
        let sum: f64 = self
            .completed_reports()
            .map(|r| r.update_drain_time.as_secs())
            .sum();
        sum / self.completed().max(1) as f64
    }

    /// Makespan of the measured application region: the maximum per-rank
    /// `total_time` over completed ranks, in seconds (the figure harness's
    /// notion of execution time).
    pub fn app_time_s(&self) -> f64 {
        self.completed_reports()
            .map(|r| r.total_time.as_secs())
            .fold(0.0f64, f64::max)
    }

    /// Total tasks executed locally, summed over completed ranks.
    pub fn tasks_executed(&self) -> usize {
        self.completed_reports().map(|r| r.tasks_executed).sum()
    }

    /// Total task results received from peer replicas.
    pub fn tasks_received(&self) -> usize {
        self.completed_reports().map(|r| r.tasks_received).sum()
    }

    /// Total tasks re-executed because their owner crashed.
    pub fn tasks_reexecuted(&self) -> usize {
        self.completed_reports().map(|r| r.tasks_reexecuted).sum()
    }

    /// Replica failures observed inside sections, summed over completed
    /// ranks.
    pub fn replica_failures_observed(&self) -> usize {
        self.completed_reports()
            .map(|r| r.replica_failures_observed)
            .sum()
    }

    /// Total modeled update bytes sent between replicas.
    pub fn update_bytes_sent(&self) -> usize {
        self.completed_reports().map(|r| r.update_bytes_sent).sum()
    }

    /// Application verification value: the maximum absolute value over
    /// completed ranks (0 when no rank completed).
    pub fn verification(&self) -> f64 {
        self.completed_reports()
            .fold(0.0f64, |acc, r| acc.max(r.verification.abs()))
    }
}

/// Result of [`Experiment::run_with`]: one result per physical rank (in
/// rank order) plus the cluster-level aggregates.
#[derive(Debug)]
#[must_use = "a CustomRun carries the per-rank results; dropping it silently loses them"]
pub struct CustomRun<T> {
    /// Per-rank results: the body's return value, or the error that stopped
    /// the rank (crashes surface as
    /// `Error::Intra(IntraError::Crashed)`).
    pub results: Vec<Result<T>>,
    /// Virtual makespan over the surviving ranks, in seconds.
    pub makespan_s: f64,
    /// Crash-stop failure events recorded by the cluster.
    pub failure_events: usize,
}

impl<T> CustomRun<T> {
    /// Unwraps every per-rank result, panicking if any rank failed — for
    /// failure-free experiments.
    pub fn unwrap_results(self) -> Vec<T> {
        self.results
            .into_iter()
            .enumerate()
            .map(|(rank, r)| match r {
                Ok(value) => value,
                Err(e) => panic!("rank {rank} failed: {e}"),
            })
            .collect()
    }

    /// Number of ranks that completed the body.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_follow_the_paper() {
        let e = Experiment::builder().app(AppId::Hpccg).build().unwrap();
        assert_eq!(e.app(), AppId::Hpccg);
        assert_eq!(e.scale(), ExperimentScale::Tiny);
        assert_eq!(e.mode(), Mode::IntraReplication);
        assert_eq!(e.replicas(), 2);
        assert_eq!(e.scheduler(), SchedulerKind::StaticBlock);
        assert_eq!(e.failures(), FailurePlan::None);
        assert_eq!(e.seed(), 42);
        assert_eq!(e.procs(), 2 * e.logical_procs());
        assert_eq!(
            e.execution_mode(),
            ExecutionMode::IntraParallel { degree: 2 }
        );
        assert_eq!(e.intra_config().scheduler.name(), "static-block");
    }

    #[test]
    fn named_axes_resolve_or_fail_typed() {
        let e = Experiment::builder()
            .app_named("gtc")
            .scale_named("small")
            .build()
            .unwrap();
        assert_eq!(e.app(), AppId::Gtc);
        assert_eq!(e.scale(), ExperimentScale::Small);
        assert_eq!(
            Experiment::builder().app_named("nope").build(),
            Err(Error::UnknownApp("nope".into()))
        );
        assert_eq!(
            Experiment::builder()
                .app(AppId::Hpccg)
                .scale_named("huge")
                .build(),
            Err(Error::UnknownScale("huge".into()))
        );
        assert!(matches!(
            Experiment::builder().build(),
            Err(Error::Config(_))
        ));
    }

    #[test]
    fn replica_validation_is_typed() {
        for (mode, replicas) in [
            (Mode::NoReplication, 0),
            (Mode::NoReplication, 2),
            (Mode::Replication, 0),
            (Mode::Replication, 1),
            (Mode::IntraReplication, 0),
            (Mode::IntraReplication, 1),
        ] {
            let err = Experiment::builder()
                .app(AppId::Hpccg)
                .mode(mode)
                .replicas(replicas)
                .build()
                .unwrap_err();
            assert_eq!(err, Error::InvalidReplicas { mode, replicas });
        }
        // Degree 3 intra-replication is fine.
        let e = Experiment::builder()
            .app(AppId::Hpccg)
            .mode(Mode::IntraReplication)
            .replicas(3)
            .build()
            .unwrap();
        assert_eq!(e.procs(), 3 * e.logical_procs());
    }

    #[test]
    fn failure_plans_without_replication_need_the_explicit_opt_in() {
        let builder = || {
            Experiment::builder()
                .app(AppId::Hpccg)
                .mode(Mode::NoReplication)
                .failures(FailurePlan::poisson(0.5))
        };
        assert_eq!(builder().build(), Err(Error::UnrecoverableFailurePlan));
        let e = builder().allow_unrecoverable_failures().build().unwrap();
        assert_eq!(e.mode(), Mode::NoReplication);
        assert!(!e.failures().is_none());
        // With replication the plan is fine without the opt-in.
        assert!(Experiment::builder()
            .app(AppId::Hpccg)
            .failures(FailurePlan::poisson(0.5))
            .build()
            .is_ok());
    }

    #[test]
    fn knob_validation_is_typed_not_clamped() {
        assert_eq!(
            Experiment::builder()
                .app(AppId::Hpccg)
                .logical_procs(0)
                .build(),
            Err(Error::NoLogicalProcs)
        );
        assert!(matches!(
            Experiment::builder()
                .app(AppId::Hpccg)
                .tasks_per_section(0)
                .build(),
            Err(Error::Config(_))
        ));
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Experiment::builder()
                    .app(AppId::Hpccg)
                    .modeled_scale(bad)
                    .build(),
                Err(Error::Config(_))
            ));
        }
        assert!(matches!(
            Experiment::builder()
                .app(AppId::Hpccg)
                .failures(FailurePlan::poisson_process(
                    FailureRate::Constant(1.0),
                    0.0
                ))
                .build(),
            Err(Error::Config(_))
        ));
        // Negative or non-finite intensities are rejected on the declared
        // fields (the sampling majorant clamps to zero, which would
        // otherwise turn a bogus rate into a silent failure-free run).
        for bad_rate in [
            FailureRate::Constant(-0.5),
            FailureRate::Constant(f64::NAN),
            FailureRate::Ramp {
                start: -1.0,
                end: 2.0,
            },
            FailureRate::Burst {
                base: 0.1,
                peak: -4.0,
                center: 0.5,
                width: 0.25,
            },
        ] {
            assert!(
                matches!(
                    Experiment::builder()
                        .app(AppId::Hpccg)
                        .failures(FailurePlan::poisson_process(bad_rate, 1.0))
                        .build(),
                    Err(Error::Config(_))
                ),
                "{bad_rate:?} must be rejected"
            );
        }
    }

    #[test]
    fn failure_plan_labels_round_trip() {
        let plans = [
            FailurePlan::None,
            FailurePlan::poisson(0.5),
            FailurePlan::poisson_process(
                FailureRate::Ramp {
                    start: 0.0,
                    end: 1.5,
                },
                10.0,
            ),
        ];
        for plan in plans {
            assert_eq!(plan.label().parse::<FailurePlan>().unwrap(), plan);
            assert_eq!(plan.to_string(), plan.label());
        }
        assert!("poisson-const-0.5".parse::<FailurePlan>().is_err());
        assert_eq!(
            "bogus".parse::<FailurePlan>(),
            Err(Error::InvalidSpec {
                what: "failure plan",
                input: "bogus".into()
            })
        );
    }

    #[test]
    fn fitted_hazard_validation_rejects_out_of_domain_shapes() {
        // Shape-like parameters must be strictly positive and finite; a
        // Weibull with shape 0 or a LogNormal with sigma 0 is not a
        // distribution, so `build` must reject it instead of letting the
        // sampler quietly produce an empty or degenerate trace.
        for bad_rate in [
            FailureRate::Weibull {
                shape: 0.0,
                scale_s: 1.0,
            },
            FailureRate::Weibull {
                shape: -0.7,
                scale_s: 1.0,
            },
            FailureRate::Weibull {
                shape: f64::NAN,
                scale_s: 1.0,
            },
            FailureRate::Weibull {
                shape: 0.7,
                scale_s: 0.0,
            },
            FailureRate::LogNormal {
                mu: f64::NAN,
                sigma: 1.0,
            },
            FailureRate::LogNormal {
                mu: 0.0,
                sigma: 0.0,
            },
            FailureRate::LogNormal {
                mu: 0.0,
                sigma: -1.0,
            },
        ] {
            assert!(
                matches!(
                    Experiment::builder()
                        .app(AppId::Hpccg)
                        .failures(FailurePlan::poisson_process(bad_rate, 1.0))
                        .build(),
                    Err(Error::Config(_))
                ),
                "{bad_rate:?} must be rejected"
            );
        }
        // A negative LogNormal location is fine: mu is a log-space mean.
        assert!(Experiment::builder()
            .app(AppId::Hpccg)
            .failures(FailurePlan::poisson_process(
                FailureRate::LogNormal {
                    mu: -0.5,
                    sigma: 1.25,
                },
                1.0
            ))
            .build()
            .is_ok());
    }

    #[test]
    fn correlated_plan_validation_is_typed() {
        // An empty rack is a domain with no groups — reject it up front.
        assert!(matches!(
            Experiment::builder()
                .app(AppId::Hpccg)
                .failures(FailurePlan::rack_failures(0, FailureRate::Constant(1.0)))
                .build(),
            Err(Error::Config(_))
        ));
        // The correlated rate itself goes through the same domain checks as
        // the per-rank plan.
        assert!(matches!(
            Experiment::builder()
                .app(AppId::Hpccg)
                .failures(FailurePlan::node_failures(FailureRate::Constant(-1.0)))
                .build(),
            Err(Error::Config(_))
        ));
        // A correlated plan in an unreplicated run is unrecoverable and
        // needs the same explicit opt-in as a per-rank plan.
        let native = || {
            Experiment::builder()
                .app(AppId::Hpccg)
                .mode(Mode::NoReplication)
                .failures(FailurePlan::node_failures(FailureRate::Constant(0.5)))
        };
        assert_eq!(native().build(), Err(Error::UnrecoverableFailurePlan));
        assert!(native().allow_unrecoverable_failures().build().is_ok());
    }

    #[test]
    fn correlated_plan_labels_round_trip() {
        let plans = [
            FailurePlan::node_failures(FailureRate::Constant(1.0)),
            FailurePlan::rack_failures(4, FailureRate::weibull_hpc(360.0)),
            FailurePlan::correlated_process(
                FailureDomain::Node,
                // Negative log-space location: the label contains `--`,
                // which the sign-aware number parser must round-trip.
                FailureRate::LogNormal {
                    mu: -0.5,
                    sigma: 1.25,
                },
                2.5,
            ),
            FailurePlan::poisson_process(FailureRate::lognormal_hpc(360.0), 1.0),
        ];
        for plan in plans {
            assert_eq!(
                plan.label().parse::<FailurePlan>().unwrap(),
                plan,
                "label {:?} must round-trip",
                plan.label()
            );
        }
        assert_eq!(
            FailurePlan::node_failures(FailureRate::Constant(1.0)).label(),
            "corr-node-const-1-h1"
        );
        assert!("corr-shelf-const-1-h1".parse::<FailurePlan>().is_err());
        assert!("corr-rack4-const-1".parse::<FailurePlan>().is_err());
    }

    #[test]
    fn scheduled_crashes_follow_the_plan_and_placement() {
        // No plan, no crashes.
        let quiet = Experiment::builder().app(AppId::Hpccg).build().unwrap();
        assert!(quiet.scheduled_crashes().is_empty());
        // A hot node-level plan under replica-disjoint placement schedules
        // whole co-located rank groups, never a partial node.
        let e = Experiment::builder()
            .app(AppId::Hpccg)
            .failures(FailurePlan::node_failures(FailureRate::Constant(50.0)))
            .build()
            .unwrap();
        let crashes = e.scheduled_crashes();
        assert!(!crashes.is_empty());
        let topology = e.topology();
        for &(rank, at) in &crashes {
            for peer in topology.ranks_on(topology.node_of(rank)) {
                assert!(
                    crashes.contains(&(peer, at)),
                    "rank {rank}'s node peers must crash at the same instant"
                );
            }
        }
        // Deterministic in the seed.
        assert_eq!(crashes, e.scheduled_crashes());
    }

    #[test]
    fn fingerprint_material_is_canonical_and_axis_sensitive() {
        let base = || Experiment::builder().app(AppId::Hpccg).seed(7);
        let material = base().build().unwrap().fingerprint_material();
        // Stable for equal experiments.
        assert_eq!(material, base().build().unwrap().fingerprint_material());
        // Grid-default experiments carry no override markers: the material
        // is exactly the six-axis form.
        assert!(material.starts_with("ipr-experiment/1|app=hpccg|"));
        assert!(!material.contains("machine="));
        assert!(!material.contains("logical_procs="));
        // Every axis perturbation changes the material.
        let variants = [
            base().app(AppId::Gtc).build().unwrap(),
            base().scale(ExperimentScale::Small).build().unwrap(),
            base().mode(Mode::Replication).build().unwrap(),
            base().replicas(3).build().unwrap(),
            base().scheduler(SchedulerKind::Adaptive).build().unwrap(),
            base().failures(FailurePlan::poisson(0.5)).build().unwrap(),
            base().seed(8).build().unwrap(),
            base().logical_procs(3).build().unwrap(),
            base().tasks_per_section(4).build().unwrap(),
            base().modeled_scale(2.0).build().unwrap(),
            base().machine(MachineModel::ideal()).build().unwrap(),
            base()
                .inject_failure(0, ProtocolPoint::SectionEnter { section: 0 })
                .build()
                .unwrap(),
            base()
                .checkpointing(CheckpointPlan::daly(0.01, 0.02))
                .build()
                .unwrap(),
        ];
        let mut materials: Vec<String> = variants
            .iter()
            .map(Experiment::fingerprint_material)
            .collect();
        materials.push(material);
        let unique: std::collections::BTreeSet<&String> = materials.iter().collect();
        assert_eq!(unique.len(), materials.len(), "{materials:#?}");
    }

    #[test]
    fn checkpointing_composes_with_native_failures_without_the_opt_in() {
        // C/R makes native-mode crashes recoverable: no
        // allow_unrecoverable_failures needed.
        let e = Experiment::builder()
            .app(AppId::Hpccg)
            .mode(Mode::NoReplication)
            .failures(FailurePlan::poisson(0.5))
            .checkpointing(CheckpointPlan::fixed(0.05, 0.005, 0.01))
            .build()
            .unwrap();
        assert!(e.ckpt().is_some());
        // Without a failure plan the interval policies resolve against an
        // infinite MTBF.
        let quiet = Experiment::builder()
            .app(AppId::Hpccg)
            .checkpointing(CheckpointPlan::young(0.01, 0.02))
            .build()
            .unwrap();
        assert_eq!(quiet.system_mtbf_s(), f64::INFINITY);
        // Out-of-domain plan parameters are rejected.
        assert!(matches!(
            Experiment::builder()
                .app(AppId::Hpccg)
                .checkpointing(CheckpointPlan::fixed(0.0, 0.01, 0.02))
                .build(),
            Err(Error::Config(_))
        ));
        // Hand-placed injections are untimed and cannot be replayed.
        assert!(matches!(
            Experiment::builder()
                .app(AppId::Hpccg)
                .checkpointing(CheckpointPlan::young(0.01, 0.02))
                .inject_failure(0, ProtocolPoint::SectionEnter { section: 0 })
                .build(),
            Err(Error::Config(_))
        ));
    }

    #[test]
    fn checkpointed_native_run_survives_crashes_and_accounts_overhead() {
        let base = || {
            Experiment::builder()
                .app(AppId::Hpccg)
                .mode(Mode::NoReplication)
                .failures(FailurePlan::poisson(2.0))
        };
        let e = base()
            .checkpointing(CheckpointPlan::fixed(0.02, 0.002, 0.004))
            .build()
            .unwrap();
        assert!(
            !e.scheduled_crashes().is_empty(),
            "the hot plan must schedule crashes for rollbacks to absorb"
        );
        let report = e.run().unwrap();
        // Every rank completes: crashes became rollbacks, not rank deaths.
        assert_eq!(report.completed(), report.procs);
        assert_eq!(report.crashed(), 0);
        let stats = report.ckpt.expect("checkpointed run reports stats");
        assert!(stats.recoveries > 0, "{stats:?}");
        assert!(stats.checkpoints > 0, "{stats:?}");
        assert!(stats.time_lost_s > 0.0 && stats.ckpt_overhead_s > 0.0);
        // The C/R overhead is on the virtual clock: slower than the same
        // experiment without failures and without checkpointing.
        let baseline = Experiment::builder()
            .app(AppId::Hpccg)
            .mode(Mode::NoReplication)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(baseline.ckpt.is_none());
        assert!(report.makespan_s > baseline.makespan_s);
        let eff = stats.efficiency(report.makespan_s, 1);
        assert!(eff > 0.0 && eff < 1.0, "{eff}");
        // Deterministic: an identical experiment reproduces the stats.
        assert_eq!(
            base()
                .checkpointing(CheckpointPlan::fixed(0.02, 0.002, 0.004))
                .build()
                .unwrap()
                .run()
                .unwrap()
                .ckpt,
            Some(stats)
        );
    }

    #[test]
    fn checkpointing_composes_with_replication() {
        // Replicated(2) + Daly under a fitted hazard: the session only
        // rolls back when both replicas of a logical rank are lost, but
        // the run still completes and reports stats.
        let e = Experiment::builder()
            .app(AppId::Hpccg)
            .mode(Mode::Replication)
            .failures(FailurePlan::poisson_process(
                FailureRate::weibull_hpc(0.5),
                1.0,
            ))
            .checkpointing(CheckpointPlan::daly(0.005, 0.01))
            .build()
            .unwrap();
        assert!(e.system_mtbf_s().is_finite());
        let report = e.run().unwrap();
        assert_eq!(report.completed(), report.procs);
        assert!(report.ckpt.is_some());
    }

    #[test]
    fn mode_round_trips_through_execution_mode() {
        for (mode, replicas) in [
            (Mode::NoReplication, 1),
            (Mode::Replication, 2),
            (Mode::IntraReplication, 3),
        ] {
            let exec = mode.with_replicas(replicas);
            assert_eq!(Mode::from(exec), mode);
            assert_eq!(exec.degree(), replicas);
        }
    }
}
