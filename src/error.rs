//! The unified error type of the `intra-replication` facade.
//!
//! Every layer of the workspace keeps its own focused error type
//! ([`ipr_core::IntraError`], [`simmpi::MpiError`]), but downstream users of
//! the facade interact with exactly one: [`enum@Error`].  `From`
//! conversions (usable with the `?` operator) fold the per-crate errors into
//! it, and the [`crate::Experiment`] builder adds the typed validation
//! errors of the experiment axes — no panics, no stringly `Box<dyn Error>`.

use ipr_core::IntraError;
use simmpi::MpiError;
use std::fmt;

/// Any error the facade can produce: per-layer runtime errors folded in via
/// `From`, plus the typed validation errors of the [`crate::Experiment`]
/// builder and the spec-parsing errors of the campaign layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An intra-parallelization runtime error (converted with `?` /
    /// `From<IntraError>`).
    Intra(IntraError),
    /// An MPI-level error that escaped the intra runtime (converted with
    /// `?` / `From<MpiError>`).
    Mpi(MpiError),
    /// An application name did not resolve against [`apps::AppId`].
    UnknownApp(String),
    /// A scale name did not resolve against [`apps::ExperimentScale`].
    UnknownScale(String),
    /// The replication degree is invalid for the requested mode (zero, or
    /// more than one replica without replication).
    InvalidReplicas {
        /// The requested execution mode.
        mode: crate::experiment::Mode,
        /// The offending replica count.
        replicas: usize,
    },
    /// A failure plan was configured for an unreplicated experiment, which
    /// cannot recover from any crash.  See
    /// [`crate::ExperimentBuilder::allow_unrecoverable_failures`] for the
    /// explicit opt-in used by baseline measurements.
    UnrecoverableFailurePlan,
    /// The experiment has no logical processes to run on.
    NoLogicalProcs,
    /// A textual spec (failure plan, mode label, …) did not parse.
    InvalidSpec {
        /// What was being parsed (e.g. `"failure plan"`).
        what: &'static str,
        /// The offending input.
        input: String,
    },
    /// A configuration value outside the experiment axes was invalid.
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Intra(e) => write!(f, "intra runtime error: {e}"),
            Error::Mpi(e) => write!(f, "MPI error: {e}"),
            Error::UnknownApp(name) => write!(
                f,
                "unknown application '{name}' (available: {})",
                apps::AppId::ALL
                    .iter()
                    .map(|a| a.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Error::UnknownScale(name) => {
                write!(f, "unknown scale '{name}' (available: full, small, tiny)")
            }
            Error::InvalidReplicas { mode, replicas } => write!(
                f,
                "invalid replica count {replicas} for mode {mode}: no-replication runs take \
                 exactly 1, replicated modes at least 2"
            ),
            Error::UnrecoverableFailurePlan => write!(
                f,
                "a failure plan without replication cannot recover from any crash (opt in \
                 explicitly with allow_unrecoverable_failures() to measure the unprotected \
                 baseline)"
            ),
            Error::NoLogicalProcs => write!(f, "experiment has zero logical processes"),
            Error::InvalidSpec { what, input } => {
                write!(f, "cannot parse {what} from '{input}'")
            }
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<IntraError> for Error {
    fn from(e: IntraError) -> Self {
        Error::Intra(e)
    }
}

impl From<MpiError> for Error {
    fn from(e: MpiError) -> Self {
        // `SelfFailed` means "this replica crashed", which the intra layer
        // already normalizes; keep the same normalization here so matching
        // on a crash needs exactly one pattern.
        Error::Intra(IntraError::from(e))
    }
}

/// Result alias for facade operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_crate_errors_fold_in_with_from() {
        assert_eq!(
            Error::from(IntraError::Crashed),
            Error::Intra(IntraError::Crashed)
        );
        // MPI errors are normalized the same way the intra layer does it.
        assert_eq!(
            Error::from(MpiError::SelfFailed),
            Error::Intra(IntraError::Crashed)
        );
        assert_eq!(
            Error::from(MpiError::Aborted),
            Error::Intra(IntraError::Mpi(MpiError::Aborted))
        );
    }

    #[test]
    fn display_is_informative() {
        assert!(Error::UnknownApp("x".into()).to_string().contains("hpccg"));
        assert!(Error::UnknownScale("x".into()).to_string().contains("tiny"));
        assert!(Error::UnrecoverableFailurePlan
            .to_string()
            .contains("allow_unrecoverable_failures"));
        let e = Error::InvalidSpec {
            what: "failure plan",
            input: "poisson-?".into(),
        };
        assert!(e.to_string().contains("failure plan"));
        assert!(e.to_string().contains("poisson-?"));
    }
}
