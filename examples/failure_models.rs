//! The failure-model library, end to end.
//!
//! Run with:
//! ```text
//! cargo run --example failure_models
//! ```
//!
//! Three tours through the library:
//!
//! 1. rate functions — the fitted Weibull/LogNormal MTBF hazards next to a
//!    homogeneous Poisson process, sampled per rank with Lewis–Shedler
//!    thinning (expected event counts vs. the analytic mean);
//! 2. a Weibull-hazard experiment — the same typed builder as every other
//!    axis, here with infant-mortality failures (shape < 1, the
//!    Schroeder–Gibson fit to the LANL failure records);
//! 3. correlated failure domains — a node-level event kills every rank of
//!    the node at once, and replica-disjoint placement is what turns that
//!    from a fatal event into a recoverable one.

use intra_replication::prelude::*;

fn main() {
    // --- 1. Rate functions and their traces. ----------------------------
    let horizon = SimTime::from_secs(10.0);
    println!("failure traces over {}s, one rank, seed 42:", 10.0);
    for rate in [
        FailureRate::Constant(0.3),
        FailureRate::weibull_hpc(3.0),
        FailureRate::lognormal_hpc(3.0),
    ] {
        let trace = sample_failure_trace(rate, horizon, 42, 0);
        println!(
            "  {:<24} {} events (analytic mean {:.2}), first at {:?}",
            rate.label(),
            trace.len(),
            rate.mean_events(horizon.as_secs()),
            trace.first()
        );
    }

    // --- 2. A fitted MTBF hazard as an experiment axis. -----------------
    let report = Experiment::builder()
        .app(AppId::Hpccg)
        .scale(ExperimentScale::Tiny)
        .mode(Mode::IntraReplication)
        .failures(FailurePlan::poisson_process(
            FailureRate::weibull_hpc(3.0),
            1.0,
        ))
        .seed(43)
        .build()
        .expect("valid experiment")
        .run()
        .expect("weibull experiment");
    println!(
        "\nHPCCG under a Weibull hazard (MTBF 3s): {} completed, {} crashed, makespan {:.4}s",
        report.completed(),
        report.crashed(),
        report.makespan_s
    );

    // --- 3. Correlated node failures vs. replica placement. -------------
    // Rate 0.3 / seed 45 schedules exactly one node-level event at the
    // tiny intra-2 scale: node 0, which hosts replica 0 of every logical
    // rank (replica-disjoint placement).  The job survives it.
    let experiment = Experiment::builder()
        .app(AppId::Hpccg)
        .scale(ExperimentScale::Tiny)
        .mode(Mode::IntraReplication)
        .failures(FailurePlan::node_failures(FailureRate::Constant(0.3)))
        .seed(45)
        .build()
        .expect("valid experiment");
    let topology = experiment.topology();
    for (rank, at) in experiment.scheduled_crashes() {
        println!(
            "\nscheduled: rank {rank} (node {}) crashes at {:?}",
            topology.node_of(rank),
            at
        );
    }
    let report = experiment.run().expect("correlated experiment");
    println!(
        "correlated node loss under intra-replication: {} completed, {} crashed — every \
         logical rank finished on its surviving replica",
        report.completed(),
        report.crashed()
    );
}
