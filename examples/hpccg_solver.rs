//! HPCCG end-to-end demo: solve the 27-point problem with the conjugate
//! gradient mini-app in the paper's three configurations and compare them.
//!
//! Run with:
//! ```text
//! cargo run --release --example hpccg_solver
//! ```
//!
//! The run uses 8 physical processes.  In the native configuration they are
//! 8 logical MPI ranks; in the replicated and intra-parallelized
//! configurations they host 2 replicas of 4 logical ranks (with twice the
//! per-rank data, following the fixed-resource methodology of the paper's
//! Figure 5).  The example prints virtual execution times and the resulting
//! replication efficiency.
//!
//! All three configurations are the same `Experiment` with a different
//! mode axis; only the per-process problem size is custom, so the body
//! goes through `Experiment::run_with`.

use apps::{run_hpccg, HpccgParams, KernelSelection};
use intra_replication::prelude::*;

fn run_mode(mode: ExecutionMode, procs: usize) -> (f64, f64) {
    let degree = mode.degree();
    let run = Experiment::builder()
        .app(AppId::Hpccg)
        .execution_mode(mode)
        .logical_procs(procs / degree)
        .build()
        .expect("valid experiment")
        .run_with(move |ctx| {
            let params = HpccgParams {
                nx: 8,
                ny: 8,
                nz: 8 * degree,
                modeled_nx: 128,
                modeled_ny: 128,
                modeled_nz: 128 * degree,
                max_iters: 15,
                kernels: KernelSelection::paper_application(),
            };
            let out = run_hpccg(ctx, &params)?;
            Ok((out.report.total_time.as_secs(), out.residual))
        })
        .expect("hpccg experiment");
    let results = run.unwrap_results();
    let time = results.iter().map(|(t, _)| *t).fold(0.0f64, f64::max);
    let residual = results[0].1;
    (time, residual)
}

fn main() {
    let procs = 8;
    println!("HPCCG on {procs} simulated physical processes (virtual time)\n");

    let (t_native, r_native) = run_mode(ExecutionMode::Native, procs);
    let (t_sdr, r_sdr) = run_mode(ExecutionMode::Replicated { degree: 2 }, procs);
    let (t_intra, r_intra) = run_mode(ExecutionMode::IntraParallel { degree: 2 }, procs);

    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "configuration", "time [s]", "efficiency", "residual"
    );
    println!(
        "{:<28} {:>12.4} {:>12.2} {:>12.3e}",
        "Open MPI (no replication)", t_native, 1.0, r_native
    );
    println!(
        "{:<28} {:>12.4} {:>12.2} {:>12.3e}",
        "SDR-MPI (full replication)",
        t_sdr,
        t_native / t_sdr,
        r_sdr
    );
    println!(
        "{:<28} {:>12.4} {:>12.2} {:>12.3e}",
        "intra-parallelization",
        t_intra,
        t_native / t_intra,
        r_intra
    );

    let eff_sdr = t_native / t_sdr;
    let eff_intra = t_native / t_intra;
    assert!(eff_sdr < 0.6, "full replication cannot beat the 50% wall");
    assert!(
        eff_intra > eff_sdr,
        "intra-parallelization should beat plain replication"
    );
    println!(
        "\nintra-parallelization recovers {:.0}% of the native throughput (vs {:.0}% for plain replication)",
        eff_intra * 100.0,
        eff_sdr * 100.0
    );
}
