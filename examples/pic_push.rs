//! Particle-in-cell demo (GTC-style): intra-parallelized charge deposition
//! and particle push with `inout` particle arrays.
//!
//! Run with:
//! ```text
//! cargo run --release --example pic_push
//! ```
//!
//! This exercises the part of the paper's design that the other examples do
//! not: tasks whose arguments are read *and* written (`inout`), which the
//! runtime snapshots at launch time so they can be re-executed safely after
//! a failure (Section III-B2; in GTC these are the particle positions).  The
//! example runs a few PIC steps on 4 physical processes (2 logical ranks × 2
//! replicas), injects a crash of one replica midway through the
//! `Experiment` builder's `inject_failure` knob, and checks that the total
//! deposited charge is conserved on every surviving replica.

use apps::{run_gtc, GtcParams};
use intra_replication::prelude::*;

fn main() {
    let particles_per_rank = 10_000;
    let steps = 6;

    let run = Experiment::builder()
        .app(AppId::Gtc)
        .mode(Mode::IntraReplication)
        .logical_procs(2)
        // Replica 0 of logical rank 1 (physical rank 1) dies at step 3.
        .inject_failure(1, ProtocolPoint::IterationStart { iteration: 3 })
        .build()
        .expect("valid experiment")
        .run_with(move |ctx| {
            let params = GtcParams::small(particles_per_rank, steps);
            run_gtc(ctx, &params)
        })
        .expect("pic experiment");

    let mut survivors = 0;
    for (rank, result) in run.results.iter().enumerate() {
        match result {
            Ok(out) => {
                survivors += 1;
                println!(
                    "physical rank {rank}: charge = {:.1} (expected {particles_per_rank}), \
                     kinetic diagnostic = {:.3}, sections = {}",
                    out.total_charge, out.kinetic, out.report.sections
                );
                assert!(
                    (out.total_charge - particles_per_rank as f64).abs() < 1e-6,
                    "charge must be conserved"
                );
            }
            Err(e) => println!("physical rank {rank}: crashed as injected ({e})"),
        }
    }
    assert_eq!(survivors, 3, "three of the four replicas survive");
    assert_eq!(run.failure_events, 1);
    println!("\npic_push finished: charge conserved on every surviving replica");
}
