//! Failure recovery demo: the crash scenarios of Section III-B2 / Figure 2.
//!
//! Run with:
//! ```text
//! cargo run --example failure_recovery
//! ```
//!
//! The example executes the paper's Figure 2 scenario: a single task reads
//! and writes variable `a` (inout) and writes variable `b` (out).  Replica 0
//! executes the task, manages to send the update of `a`, and crashes before
//! sending `b`.  The surviving replica re-executes the task starting from the
//! snapshot of `a` taken when the task was launched, ending with the correct
//! state (a = 2, b = 4) instead of the corrupted one (a = 3, b = 6) that a
//! naive re-execution would produce.  It then runs a second, larger section
//! to show that work continues (entirely on the survivor) after the crash.
//!
//! The hand-placed crash is one knob of the `Experiment` builder
//! (`inject_failure`); the cluster, replication environment and runtime all
//! come with it.

use intra_replication::prelude::*;

fn main() {
    let run = Experiment::builder()
        .app(AppId::Hpccg) // nominal: the body drives its own sections
        .mode(Mode::IntraReplication)
        .logical_procs(1)
        // Replica 0 (physical rank 0) crashes in the middle of sending the
        // update of the first task of section 0: after variable `a`
        // (1 variable sent), before variable `b`.
        .inject_failure(
            0,
            ProtocolPoint::MidUpdateSend {
                section: 0,
                task: 0,
                vars_sent: 1,
            },
        )
        .build()
        .expect("valid experiment")
        .run_with(|ctx| {
            let rank = ctx.env.physical_rank();

            // Figure 2a: a = 1, b = 0; task1: a <- a + 1; b <- a * 2.
            let mut ws = Workspace::new();
            let a = ws.add("a", vec![1.0]);
            let b = ws.add("b", vec![0.0]);

            let mut section = ctx.rt.section(&mut ws);
            section.add_task(TaskDef::new(
                "task1",
                |c| {
                    c.outputs[0][0] += 1.0; // a (inout)
                    c.outputs[1][0] = c.outputs[0][0] * 2.0; // b (out)
                },
                vec![ArgSpec::inout(a, 0..1), ArgSpec::output(b, 0..1)],
            ))?;

            match section.end() {
                Ok(rep) => {
                    // Only the survivor reaches this point.
                    println!(
                        "rank {rank}: section 0 finished, a = {}, b = {}, re-executed tasks = {}",
                        ws.get(a)[0],
                        ws.get(b)[0],
                        rep.tasks_reexecuted
                    );
                    assert_eq!(
                        ws.get(a)[0],
                        2.0,
                        "re-execution must start from the snapshot"
                    );
                    assert_eq!(ws.get(b)[0], 4.0);
                }
                Err(IntraError::Crashed) => {
                    println!("rank {rank}: crashed mid-update (as injected)");
                    return Ok((rank, false));
                }
                Err(e) => panic!("unexpected error: {e}"),
            }

            // A follow-up section: the survivor now owns all the work.
            let big = ws.add("big", (0..1024).map(|i| i as f64).collect());
            let out = ws.add_zeros("out", 1024);
            let mut section = ctx.rt.section(&mut ws);
            section.add_split(1024, |chunk| {
                TaskDef::new(
                    "square",
                    |c| {
                        for i in 0..c.outputs[0].len() {
                            c.outputs[0][i] = c.inputs[0][i] * c.inputs[0][i];
                        }
                    },
                    vec![
                        ArgSpec::input(big, chunk.clone()),
                        ArgSpec::output(out, chunk),
                    ],
                )
            })?;
            let rep = section.end()?;
            println!(
                "rank {rank}: section 1 executed {} tasks locally (peer is gone), received {}",
                rep.tasks_executed_locally, rep.tasks_received
            );
            assert_eq!(ws.get(out)[3], 9.0);
            Ok((rank, true))
        })
        .expect("failure-recovery experiment");

    let mut survivors = 0;
    for (rank, survived) in run.results.iter().flatten() {
        if *survived {
            survivors += 1;
            println!("physical rank {rank} survived and holds a consistent state");
        }
    }
    assert_eq!(
        survivors, 1,
        "exactly one replica survives in this scenario"
    );
    assert_eq!(run.failure_events, 1, "exactly one crash was injected");
    println!("failure recovery demo finished successfully");
}
