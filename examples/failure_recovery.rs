//! Failure recovery demo: the crash scenarios of Section III-B2 / Figure 2.
//!
//! Run with:
//! ```text
//! cargo run --example failure_recovery
//! ```
//!
//! The example executes the paper's Figure 2 scenario: a single task reads
//! and writes variable `a` (inout) and writes variable `b` (out).  Replica 0
//! executes the task, manages to send the update of `a`, and crashes before
//! sending `b`.  The surviving replica re-executes the task starting from the
//! snapshot of `a` taken when the task was launched, ending with the correct
//! state (a = 2, b = 4) instead of the corrupted one (a = 3, b = 6) that a
//! naive re-execution would produce.  It then runs a second, larger section
//! to show that work continues (entirely on the survivor) after the crash.

use intra_replication::prelude::*;

fn main() {
    let report = run_cluster(&ClusterConfig::new(2), |proc| {
        let injector = FailureInjector::none();
        // Replica 0 (physical rank 0) crashes in the middle of sending the
        // update of the first task of section 0: after variable `a`
        // (1 variable sent), before variable `b`.
        injector.arm(
            0,
            ProtocolPoint::MidUpdateSend {
                section: 0,
                task: 0,
                vars_sent: 1,
            },
        );
        let env = ReplicatedEnv::new(
            proc.clone(),
            ExecutionMode::IntraParallel { degree: 2 },
            injector,
        )
        .expect("environment");
        let mut rt = IntraRuntime::new(env, IntraConfig::paper());

        // Figure 2a: a = 1, b = 0; task1: a <- a + 1; b <- a * 2.
        let mut ws = Workspace::new();
        let a = ws.add("a", vec![1.0]);
        let b = ws.add("b", vec![0.0]);

        let mut section = rt.section(&mut ws);
        section
            .add_task(TaskDef::new(
                "task1",
                |ctx| {
                    ctx.outputs[0][0] += 1.0; // a (inout)
                    ctx.outputs[1][0] = ctx.outputs[0][0] * 2.0; // b (out)
                },
                vec![ArgSpec::inout(a, 0..1), ArgSpec::output(b, 0..1)],
            ))
            .expect("launch task1");

        match section.end() {
            Ok(rep) => {
                // Only the survivor reaches this point.
                println!(
                    "rank {}: section 0 finished, a = {}, b = {}, re-executed tasks = {}",
                    proc.rank(),
                    ws.get(a)[0],
                    ws.get(b)[0],
                    rep.tasks_reexecuted
                );
                assert_eq!(
                    ws.get(a)[0],
                    2.0,
                    "re-execution must start from the snapshot"
                );
                assert_eq!(ws.get(b)[0], 4.0);
            }
            Err(IntraError::Crashed) => {
                println!("rank {}: crashed mid-update (as injected)", proc.rank());
                return (proc.rank(), false);
            }
            Err(e) => panic!("unexpected error: {e}"),
        }

        // A follow-up section: the survivor now owns all the work.
        let big = ws.add("big", (0..1024).map(|i| i as f64).collect());
        let out = ws.add_zeros("out", 1024);
        let mut section = rt.section(&mut ws);
        section
            .add_split(1024, |chunk| {
                TaskDef::new(
                    "square",
                    |ctx| {
                        for i in 0..ctx.outputs[0].len() {
                            ctx.outputs[0][i] = ctx.inputs[0][i] * ctx.inputs[0][i];
                        }
                    },
                    vec![
                        ArgSpec::input(big, chunk.clone()),
                        ArgSpec::output(out, chunk),
                    ],
                )
            })
            .expect("launch follow-up tasks");
        let rep = section.end().expect("follow-up section");
        println!(
            "rank {}: section 1 executed {} tasks locally (peer is gone), received {}",
            proc.rank(),
            rep.tasks_executed_locally,
            rep.tasks_received
        );
        assert_eq!(ws.get(out)[3], 9.0);
        (proc.rank(), true)
    });

    let mut survivors = 0;
    for (rank, survived) in report.results.iter().flatten() {
        if *survived {
            survivors += 1;
            println!("physical rank {rank} survived and holds a consistent state");
        }
    }
    assert_eq!(
        survivors, 1,
        "exactly one replica survives in this scenario"
    );
    assert_eq!(report.failures.len(), 1, "exactly one crash was injected");
    println!("failure recovery demo finished successfully");
}
