//! Adaptive scheduling: watching the history-driven scheduler converge.
//!
//! Run with:
//! ```text
//! cargo run --example adaptive_sched
//! ```
//!
//! A 2-replica logical process executes the same heterogeneous section six
//! times.  The section mixes flop-bound "push-like" tasks (GTC's particle
//! push) with memory-bound "sparsemv-like" tasks (HPCCG's dominant kernel).
//! The declared scheduling weight, `max(flops, mem_bytes)`, mixes units and
//! mis-ranks tasks across the two roofline regimes, so the declared-weight
//! LPT scheduler (`SchedulerKind::CostAware`) settles on a suboptimal
//! split.  The `SchedulerKind::Adaptive` scheduler records the virtual-time
//! duration of every task (see `SectionReport::task_costs`), folds it into
//! a per-task-name EMA (`CostModel`), and from the second instance on
//! schedules from *measured* durations — the makespan drops and stays down.
//!
//! The scheduler is one typed axis of the `Experiment` builder; everything
//! else (cluster, replication environment, runtime) comes with it.

use intra_replication::prelude::*;
// The heterogeneous (name, flops, mem_bytes) task set shared with the
// ABL-ADAPT ablation, so the example, the ablation and its acceptance test
// stay on the same workload.
use ipr_bench::ablations::adaptive_task_set as tasks;

fn run(scheduler: SchedulerKind, iterations: usize) -> Vec<f64> {
    let run = Experiment::builder()
        .app(AppId::Hpccg) // nominal: the body drives its own sections
        .mode(Mode::IntraReplication)
        .logical_procs(1)
        .scheduler(scheduler)
        .build()
        .expect("valid experiment")
        .run_with(move |ctx| {
            let mut ws = Workspace::new();
            let set = tasks();
            let out = ws.add_zeros("out", set.len());
            for _ in 0..iterations {
                let mut section = ctx.rt.section(&mut ws);
                for (t, (name, flops, mem)) in set.iter().enumerate() {
                    section.add_task(
                        TaskDef::new(
                            name,
                            |c| c.outputs[0][0] += 1.0,
                            vec![ArgSpec::inout(out, t..t + 1)],
                        )
                        .with_cost(TaskCost::new(*flops, *mem)),
                    )?;
                }
                let _ = section.end()?;
            }
            // Per-iteration section times plus what the cost model learned.
            let times: Vec<f64> = ctx
                .rt
                .report()
                .sections()
                .iter()
                .map(|s| s.total_time().as_secs())
                .collect();
            if ctx.env.replica_id() == 0 {
                println!("  learned costs (replica 0 of '{scheduler}'):");
                for (name, _, _) in &set {
                    // Each name occurs once per section, so its history key
                    // is the name's first instance.
                    let key = intra_replication::core::cost::instance_key(name, 0);
                    if let Some(est) = ctx.rt.cost_model().estimate(&key) {
                        println!(
                            "    {name}: {:.4} s after {} observation(s)",
                            est.seconds, est.samples
                        );
                    }
                }
            }
            Ok(times)
        })
        .expect("adaptive-scheduling experiment");
    // Makespan per iteration: max over the two replicas.
    let per_proc = run.unwrap_results();
    (0..iterations)
        .map(|i| per_proc.iter().map(|t| t[i]).fold(0.0f64, f64::max))
        .collect()
}

fn main() {
    let iterations = 6;
    println!("adaptive scheduling convergence, {iterations} instances of one section\n");
    let adaptive = run(SchedulerKind::Adaptive, iterations);
    let cost_aware = run(SchedulerKind::CostAware, iterations);

    println!("\n  iter   cost-aware [s]   adaptive [s]");
    for i in 0..iterations {
        let marker = if adaptive[i] < cost_aware[i] - 1e-12 {
            "  <- measured costs in effect"
        } else {
            ""
        };
        println!(
            "  {i:>4}   {:>14.4}   {:>12.4}{marker}",
            cost_aware[i], adaptive[i]
        );
    }

    assert!(
        (adaptive[0] - cost_aware[0]).abs() < 1e-9,
        "first instance has no history: the schedulers must coincide"
    );
    assert!(
        adaptive[iterations - 1] < cost_aware[iterations - 1],
        "adaptive must beat declared-weight LPT once the EMA is warm"
    );
    println!(
        "\nadaptive converged after one warm-up instance: {:.4} s -> {:.4} s ({:.0}% faster)",
        adaptive[0],
        adaptive[iterations - 1],
        100.0 * (1.0 - adaptive[iterations - 1] / adaptive[0])
    );
}
