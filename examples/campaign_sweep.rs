//! Campaign-engine demo: a declarative failure-rate sweep.
//!
//! Run with:
//! ```text
//! cargo run --release --example campaign_sweep
//! ```
//!
//! The example builds a custom campaign grid — HPCCG under
//! intra-parallelized replication, swept over Poisson failure rates from
//! fault-free to aggressive — expands it into deterministic runs, executes
//! them in parallel across OS threads, and prints the resulting
//! crash/recovery behaviour.  Each run is one `intra_replication::Experiment`
//! under the hood (see `RunSpec::experiment`), and every run is exactly
//! reproducible from the (configuration, seed) pair shown in its id: higher rates kill more
//! replicas, and as long as one replica of each logical process survives,
//! the intra runtime re-executes the lost tasks and the application
//! finishes with the correct result.

use apps::ExperimentScale;
use campaign::spec::FailureSpec;
use campaign::{run_specs, CampaignGrid};
use ipr_core::SchedulerKind;
use replication::{ExecutionMode, FailureRate};

fn main() {
    let grid = CampaignGrid {
        name: "failure-sweep-demo".to_string(),
        scale: ExperimentScale::Tiny,
        apps: vec![apps::AppId::Hpccg],
        modes: vec![ExecutionMode::IntraParallel { degree: 2 }],
        schedulers: vec![SchedulerKind::StaticBlock],
        failures: vec![
            FailureSpec::None,
            FailureSpec::Poisson {
                rate: FailureRate::Constant(0.5),
                horizon_s: 1.0,
            },
            FailureSpec::Poisson {
                rate: FailureRate::Constant(2.0),
                horizon_s: 1.0,
            },
            FailureSpec::Poisson {
                rate: FailureRate::Ramp {
                    start: 0.0,
                    end: 4.0,
                },
                horizon_s: 1.0,
            },
        ],
        ckpts: vec![None],
        seeds: vec![43, 44],
    };

    let specs = grid.expand();
    println!("expanded {} runs; executing on 4 threads\n", specs.len());
    let runs = run_specs(&specs, 4);

    println!(
        "{:<55} {:>5} {:>7} {:>7} {:>6} {:>10}",
        "run id", "procs", "crashed", "reexec", "alive", "makespan"
    );
    for r in &runs {
        println!(
            "{:<55} {:>5} {:>7} {:>7} {:>6} {:>9.4}s",
            r.id, r.procs, r.crashed, r.tasks_reexecuted, r.completed, r.makespan_s
        );
    }

    // The sweep is deterministic: re-running it (even with a different
    // thread count) reproduces the same report, byte for byte.
    let again = run_specs(&specs, 1);
    assert_eq!(runs, again, "campaign runs are deterministic");

    // Fault-free runs complete everywhere; and within this sweep at least
    // one failing run recovers through task re-execution.
    assert!(runs
        .iter()
        .filter(|r| r.failure == "none")
        .all(|r| r.completed == r.procs && r.crashed == 0));
    assert!(
        runs.iter()
            .any(|r| r.tasks_reexecuted > 0 && r.completed > 0),
        "the sweep exercises crash recovery"
    );
    println!("\ncampaign sweep demo finished successfully");
}
