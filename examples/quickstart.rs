//! Quickstart: intra-parallelizing the `waxpby` kernel of the paper's
//! Figure 4 on a 2-replica logical process.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Two simulated physical processes form the two replicas of one logical MPI
//! rank.  A `waxpby` computation (`w = alpha*x + beta*y`) is split into 8
//! tasks; each replica executes 4 of them and receives the other 4 results
//! from its peer, so both end up with the complete vector while having done
//! only half the computation — the core idea of intra-parallelization.

use intra_replication::prelude::*;

fn main() {
    let n = 1 << 16;
    let alpha = 2.0;
    let beta = 0.5;

    let report = run_cluster(&ClusterConfig::new(2), move |proc| {
        // Build the replication environment: 2 replicas of 1 logical process,
        // sharing work inside intra-parallel sections.
        let env = ReplicatedEnv::without_failures(
            proc.clone(),
            ExecutionMode::IntraParallel { degree: 2 },
        )
        .expect("environment");
        let mut rt = IntraRuntime::new(env, IntraConfig::paper());

        // The replicated variables: x and y are inputs, w is the output.
        let mut ws = Workspace::new();
        let x = ws.add("x", (0..n).map(|i| i as f64).collect());
        let y = ws.add("y", (0..n).map(|i| (n - i) as f64).collect());
        let w = ws.add_zeros("w", n);

        // One intra-parallel section of 8 waxpby tasks (Figure 4).
        let mut section = rt.section(&mut ws);
        section
            .add_split(n, |chunk| {
                TaskDef::new(
                    "waxpby",
                    move |ctx| {
                        let x = &ctx.inputs[0];
                        let y = &ctx.inputs[1];
                        let w = &mut ctx.outputs[0];
                        for i in 0..w.len() {
                            w[i] = alpha * x[i] + beta * y[i];
                        }
                    },
                    vec![
                        ArgSpec::input(x, chunk.clone()),
                        ArgSpec::input(y, chunk.clone()),
                        ArgSpec::output(w, chunk),
                    ],
                )
            })
            .expect("launch tasks");
        let section_report = section.end().expect("section");

        // Verify: both replicas hold the complete result.
        let ok = ws
            .get(w)
            .iter()
            .enumerate()
            .all(|(i, &v)| (v - (alpha * i as f64 + beta * (n - i) as f64)).abs() < 1e-9);
        (
            proc.rank(),
            ok,
            section_report.tasks_executed_locally,
            section_report.tasks_received,
            section_report.update_bytes_sent,
        )
    });

    for (rank, ok, local, received, bytes) in report.unwrap_results() {
        println!(
            "replica {rank}: result correct = {ok}, tasks executed locally = {local}, \
             tasks received from peer = {received}, update bytes sent = {bytes}"
        );
        assert!(ok, "replica {rank} has an incorrect result");
    }
    println!("quickstart finished: both replicas hold the full waxpby result");
}
