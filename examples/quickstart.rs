//! Quickstart: the typed `Experiment` facade, end to end.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Two things happen here:
//!
//! 1. the one-liner — a catalog application (HPCCG) runs in the paper's
//!    intra-replication mode through `Experiment::run()`;
//! 2. the paper's Figure 4 — a `waxpby` computation (`w = alpha*x +
//!    beta*y`) split into 8 tasks on a 2-replica logical process, written
//!    through `Experiment::run_with()` and the typed register/launch
//!    session API.  Each replica executes 4 tasks and receives the other 4
//!    results from its peer, so both end up with the complete vector while
//!    having done only half the computation — the core idea of
//!    intra-parallelization.

use intra_replication::prelude::*;

fn main() {
    // --- 1. A catalog application in one expression. --------------------
    let report = Experiment::builder()
        .app(AppId::Hpccg)
        .scale(ExperimentScale::Tiny)
        .mode(Mode::IntraReplication)
        .build()
        .expect("valid experiment")
        .run()
        .expect("hpccg experiment");
    println!(
        "HPCCG (tiny, intra, {} ranks): app time {:.4}s, mean section time {:.4}s\n",
        report.procs,
        report.app_time_s(),
        report.mean_section_s()
    );

    // --- 2. Figure 4: an intra-parallelized waxpby section. -------------
    let n = 1 << 16;
    let alpha = 2.0;
    let beta = 0.5;

    let run = Experiment::builder()
        .app(AppId::Hpccg) // nominal: the body below drives its own section
        .mode(Mode::IntraReplication)
        .logical_procs(1) // 2 physical processes = 2 replicas of 1 logical rank
        .build()
        .expect("valid experiment")
        .run_with(move |ctx| {
            // The replicated variables: x and y are inputs, w is the output.
            let mut ws = Workspace::new();
            let x = ws.add("x", (0..n).map(|i| i as f64).collect());
            let y = ws.add("y", (0..n).map(|i| (n - i) as f64).collect());
            let w = ws.add_zeros("w", n);

            // One intra-parallel section of 8 waxpby tasks (Figure 4),
            // through the typed session API: the handle's type carries the
            // three-argument arity, so a mis-bound launch cannot compile.
            let mut session = IntraSession::begin(ctx.rt.section(&mut ws));
            let waxpby = session.register(
                "waxpby",
                [ArgTag::In, ArgTag::In, ArgTag::Out],
                |c: &mut TaskCtx| {
                    let (alpha, beta) = (c.scalars[0], c.scalars[1]);
                    for i in 0..c.outputs[0].len() {
                        c.outputs[0][i] = alpha * c.inputs[0][i] + beta * c.inputs[1][i];
                    }
                },
            );
            for chunk in split_ranges(n, 8) {
                session.launch(
                    waxpby,
                    [(x, chunk.clone()), (y, chunk.clone()), (w, chunk)],
                    vec![alpha, beta],
                    (),
                )?;
            }
            let section_report = session.end()?;

            // Verify: both replicas hold the complete result.
            let ok = ws
                .get(w)
                .iter()
                .enumerate()
                .all(|(i, &v)| (v - (alpha * i as f64 + beta * (n - i) as f64)).abs() < 1e-9);
            Ok((
                ctx.env.physical_rank(),
                ok,
                section_report.tasks_executed_locally,
                section_report.tasks_received,
                section_report.update_bytes_sent,
            ))
        })
        .expect("waxpby experiment");

    for (rank, ok, local, received, bytes) in run.unwrap_results() {
        println!(
            "replica {rank}: result correct = {ok}, tasks executed locally = {local}, \
             tasks received from peer = {received}, update bytes sent = {bytes}"
        );
        assert!(ok, "replica {rank} has an incorrect result");
    }
    println!("quickstart finished: both replicas hold the full waxpby result");
}
