#!/bin/sh
# Dumps the workspace's public API surface to stdout.
#
# Text-based on purpose: no network, no extra tooling, fast enough to run
# on every CI push.  One line per `pub` item (functions, types, traits,
# modules, constants, re-exports), prefixed with its file, in file order.
# `pub(crate)` & co. are excluded — they are not part of the surface.
#
# Items spanning several source lines are joined before printing:
# `pub use` re-exports are captured up to their terminating `;` (so the
# full contents of brace-grouped re-exports — the facade's main surface —
# show up and drift is detected when a symbol is added to or removed from
# a group), and `pub fn` signatures up to their body `{`, so rustfmt line
# wrapping never hides an API change.
#
# The checked-in snapshot lives at docs/api-surface.txt; `make api-surface`
# regenerates it and CI fails when the surface drifts without the file
# being updated, so every API change is visible in review.
set -eu
cd "$(dirname "$0")/.."

find src crates/*/src -name '*.rs' | LC_ALL=C sort | while read -r f; do
    awk -v FILE="$f" '
        function flush(buf,    out) {
            out = buf
            gsub(/[ \t]+/, " ", out)
            sub(/^ /, "", out)
            if (out ~ /^pub use /) {
                # Re-exports: keep the full (possibly brace-grouped) path
                # list, terminated by `;`.
                sub(/;.*$/, "", out)
            } else {
                # Declarations: cut at the body/initializer, keep the
                # signature only.
                sub(/ ?\{.*$/, "", out)
                sub(/ ?=.*$/, "", out)
                sub(/;.*$/, "", out)
            }
            print FILE ": " out
        }
        cap {
            buf = buf " " $0
            if (isuse ? index($0, ";") : ($0 ~ /[{;=]/)) { flush(buf); cap = 0 }
            next
        }
        /^[ \t]*pub ((async |unsafe |const )*(fn|struct|enum|trait|type|mod|const|static|use)[ (<])/ {
            buf = $0
            isuse = ($0 ~ /^[ \t]*pub use /)
            if (isuse ? index($0, ";") : ($0 ~ /[{;=]/)) { flush(buf) } else { cap = 1 }
        }
    ' "$f"
done
